//===----------------------------------------------------------------------===//
///
/// \file
/// Batch-vs-serial equivalence: the BatchCompiler determinism contract
/// says a batch produces identical per-job results for every worker
/// count. For every placement scheme this compiles the audit matrix at
/// --jobs 1, 2, and 8 and asserts the optimizer stats, the audit
/// findings, and the per-job stat deltas are bit-identical to the serial
/// run. Runs under TSan via the check-threads label.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchCompiler.h"
#include "suite/Suite.h"

#include "gtest/gtest.h"

#include <sstream>
#include <string>
#include <vector>

using namespace nascent;

namespace {

/// Everything about a job's outcome that must not depend on the worker
/// count, rendered to comparable strings.
struct JobFingerprint {
  bool Success;
  std::string Stats;
  bool AuditClean;
  std::string AuditReport;
  obs::StatSnapshot::FlatMap Work;

  bool operator==(const JobFingerprint &O) const = default;
};

std::vector<JobFingerprint> fingerprints(unsigned Jobs,
                                         const std::vector<BatchJob> &Batch) {
  std::vector<BatchJobResult> Results = BatchCompiler(Jobs).run(Batch);
  std::vector<JobFingerprint> Out;
  for (const BatchJobResult &R : Results) {
    std::ostringstream SS;
    R.Result.Stats.print(SS);
    Out.push_back({R.Result.Success, SS.str(), R.Result.Audit.clean(),
                   R.Result.Audit.render(), R.Work});
  }
  return Out;
}

std::vector<BatchJob> auditMatrix() {
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const ImplicationMode Modes[] = {ImplicationMode::All,
                                   ImplicationMode::CrossFamilyOnly,
                                   ImplicationMode::None};
  const SuiteProgram *P = findSuiteProgram("vortex");
  EXPECT_NE(P, nullptr);
  std::vector<BatchJob> Batch;
  for (PlacementScheme Scheme : Schemes) {
    for (ImplicationMode Mode : Modes) {
      PipelineOptions PO;
      PO.Opt.Scheme = Scheme;
      PO.Opt.Implications = Mode;
      PO.Audit = true;
      Batch.push_back({P->Source, PO});
    }
  }
  return Batch;
}

TEST(BatchCompiler, ParallelRunsMatchSerialForEveryScheme) {
  std::vector<BatchJob> Batch = auditMatrix();

  // Warmup so one-time lazy initialisation (dynamically interned
  // counters and the like) cannot appear as a first-run-only delta.
  fingerprints(1, Batch);

  std::vector<JobFingerprint> Serial = fingerprints(1, Batch);
  for (unsigned Jobs : {2u, 8u}) {
    std::vector<JobFingerprint> Parallel = fingerprints(Jobs, Batch);
    ASSERT_EQ(Parallel.size(), Serial.size());
    for (size_t I = 0; I != Serial.size(); ++I) {
      EXPECT_TRUE(Serial[I].Success) << "job " << I;
      EXPECT_EQ(Parallel[I].Success, Serial[I].Success)
          << "jobs=" << Jobs << " job " << I;
      EXPECT_EQ(Parallel[I].Stats, Serial[I].Stats)
          << "jobs=" << Jobs << " job " << I;
      EXPECT_EQ(Parallel[I].AuditClean, Serial[I].AuditClean)
          << "jobs=" << Jobs << " job " << I;
      EXPECT_EQ(Parallel[I].AuditReport, Serial[I].AuditReport)
          << "jobs=" << Jobs << " job " << I;
      EXPECT_EQ(Parallel[I].Work, Serial[I].Work)
          << "jobs=" << Jobs << " job " << I;
    }
  }
}

TEST(BatchCompiler, RegistryTotalsMatchSerialAfterParallelRun) {
  // The post-run registry view must also be exact: every worker is
  // joined (and its shard flushed) before run() returns, so the total
  // growth over a batch is the same for every worker count.
  std::vector<BatchJob> Batch = auditMatrix();
  fingerprints(1, Batch); // warmup

  auto RunDelta = [&Batch](unsigned Jobs) {
    obs::StatSnapshot Before = obs::StatRegistry::global().snapshot();
    BatchCompiler(Jobs).run(Batch);
    return obs::StatRegistry::global().snapshot().deltaFrom(Before);
  };
  obs::StatSnapshot::FlatMap Serial = RunDelta(1);
  EXPECT_FALSE(Serial.empty());
  EXPECT_EQ(RunDelta(2), Serial);
  EXPECT_EQ(RunDelta(8), Serial);
}

TEST(BatchCompiler, CompileErrorsAreReportedNotThrown) {
  std::vector<BatchJob> Batch(4, BatchJob{"not a ( valid program",
                                          PipelineOptions{}});
  for (unsigned Jobs : {1u, 2u}) {
    std::vector<BatchJobResult> Results = BatchCompiler(Jobs).run(Batch);
    ASSERT_EQ(Results.size(), Batch.size());
    for (const BatchJobResult &R : Results)
      EXPECT_FALSE(R.Result.Success);
  }
}

TEST(BatchCompiler, ZeroJobsClampsToSerial) {
  EXPECT_EQ(BatchCompiler(0).jobs(), 1u);
  EXPECT_GE(resolveJobCount(0), 1u);
  EXPECT_EQ(resolveJobCount(5), 5u);
}

} // namespace

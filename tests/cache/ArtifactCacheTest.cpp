//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the content-addressed artifact cache (docs/caching.md):
/// key stability and discrimination, first-store-wins sharing, FIFO
/// eviction under a byte budget (with evicted entries surviving through
/// held references), and exact hit/miss reconciliation when the pipeline
/// compiles the same source repeatedly.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "driver/Pipeline.h"
#include "suite/Suite.h"
#include "support/Hash.h"

#include "gtest/gtest.h"

using namespace nascent;
using support::Hash128;

namespace {

TEST(ArtifactCache, FrontendKeyIsStableAndDiscriminates) {
  LoweringOptions L;
  Hash128 A = cache::hashFrontendKey("program p\nend program", L, 0);
  Hash128 B = cache::hashFrontendKey("program p\nend program", L, 0);
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.isZero());
  EXPECT_EQ(A.hex().size(), 32u);

  // Any key component changing must change the key: the source bytes,
  // each lowering option, and the check-source kind (PRX vs INX share a
  // snapshot shape but must not share function-key memo entries).
  EXPECT_NE(cache::hashFrontendKey("program q\nend program", L, 0), A);
  LoweringOptions NoChecks = L;
  NoChecks.InsertChecks = false;
  EXPECT_NE(cache::hashFrontendKey("program p\nend program", NoChecks, 0), A);
  EXPECT_NE(cache::hashFrontendKey("program p\nend program", L, 1), A);
}

TEST(ArtifactCache, StableHasherIsOrderAndLengthSensitive) {
  support::StableHasher H1, H2, H3;
  H1.str("ab");
  H1.str("c");
  H2.str("a");
  H2.str("bc");
  H3.str("abc");
  // Length-prefixed fields: concatenation cannot alias a shifted split.
  EXPECT_NE(H1.digest(), H2.digest());
  EXPECT_NE(H2.digest(), H3.digest());
  // digest() is non-destructive.
  EXPECT_EQ(H3.digest(), H3.digest());
}

TEST(ArtifactCache, FunctionContentKeyTracksIRContent) {
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);
  PipelineOptions PO;
  PO.Optimize = false;
  CompileResult R = compileSource(P->Source, PO);
  ASSERT_TRUE(R.Success);
  Function *F = R.M->functions().front();

  // Identical clones hash identically — the property that lets one
  // analysis build serve every grid cell over the same snapshot.
  std::unique_ptr<Module> Clone = R.M->clone();
  EXPECT_EQ(cache::hashFunctionContent(*F),
            cache::hashFunctionContent(*Clone->functions().front()));

  // Any divergence — here a single instruction's source location, one of
  // the subtlest fields (it only affects diagnostics and provenance
  // output, not execution) — must change the key.
  Function *CF = Clone->functions().front();
  ASSERT_NE(CF->numBlocks(), 0u);
  BasicBlock &BB = **CF->begin();
  ASSERT_FALSE(BB.instructions().empty());
  BB.instructions().front().Loc.Line += 1;
  EXPECT_NE(cache::hashFunctionContent(*F), cache::hashFunctionContent(*CF));
}

TEST(ArtifactCache, FunctionKeyMemoisesPerModule) {
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);
  PipelineOptions PO;
  PO.Optimize = false;
  CompileResult R = compileSource(P->Source, PO);
  ASSERT_TRUE(R.Success);
  Function *F = R.M->functions().front();

  cache::ArtifactCache C;
  Hash128 ModuleKey = cache::hashFrontendKey(P->Source, {}, 0);
  Hash128 K1 = C.functionKey(ModuleKey, *F);
  Hash128 K2 = C.functionKey(ModuleKey, *F);
  EXPECT_EQ(K1, K2);
  EXPECT_EQ(K1, cache::hashFunctionContent(*F));
  // Different module key, same function: distinct memo slots, same
  // content hash.
  Hash128 OtherModule = cache::hashFrontendKey(P->Source, {}, 1);
  EXPECT_EQ(C.functionKey(OtherModule, *F), K1);
}

TEST(ArtifactCache, FirstStoreWinsAndEntriesAreShared) {
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);
  PipelineOptions PO;
  PO.Optimize = false;
  CompileResult R = compileSource(P->Source, PO);
  ASSERT_TRUE(R.Success);
  const Function &F = *R.M->functions().front();

  cache::ArtifactCache C;
  Hash128 Key{1, 2};
  auto First = std::make_shared<const cache::LoopArtifacts>(F);
  auto Second = std::make_shared<const cache::LoopArtifacts>(F);
  EXPECT_EQ(C.storeLoopArtifacts(Key, First), First);
  // A concurrent duplicate build stores second: the original entry wins
  // so every reader shares one artifact.
  EXPECT_EQ(C.storeLoopArtifacts(Key, Second), First);
  EXPECT_EQ(C.findLoopArtifacts(Key), First);
}

TEST(ArtifactCache, EvictionIsFifoWithinBudgetAndKeepsLiveReaders) {
  // A 16-byte budget gives each shard a 1-byte slice, so every store
  // overflows its shard and evicts all older entries in it. Keys with
  // equal Lo % 16 land in one shard, making the FIFO order observable.
  cache::ArtifactCache C(/*MaxBytes=*/16);
  Hash128 K1{16, 0}, K2{32, 0}, K3{48, 0};

  C.storeContextSeed(K1, cache::ContextSeed{});
  std::shared_ptr<const cache::ContextSeed> Held = C.findContextSeed(K1);
  ASSERT_NE(Held, nullptr);

  C.storeContextSeed(K2, cache::ContextSeed{});
  C.storeContextSeed(K3, cache::ContextSeed{});

  cache::ArtifactCache::Stats S = C.stats();
  EXPECT_EQ(S.Evictions, 2u);
  // Oldest entries are gone, the newest survives (the just-stored entry
  // is never evicted, even over budget).
  EXPECT_EQ(C.findContextSeed(K1), nullptr);
  EXPECT_EQ(C.findContextSeed(K2), nullptr);
  EXPECT_NE(C.findContextSeed(K3), nullptr);
  // The held reference outlives the eviction.
  EXPECT_EQ(Held->BuildWordOps, 0u);

  C.clear();
  EXPECT_EQ(C.findContextSeed(K3), nullptr);
  EXPECT_EQ(C.stats().Bytes, 0u);
}

TEST(ArtifactCache, PipelineHitsAndMissesReconcileExactly) {
  // K identical compiles against a fresh cache: the first misses every
  // tier it touches, each later compile repeats exactly the same lookups
  // as hits. NI builds exactly one cacheable elimination context per
  // function and no loop artifacts, so the arithmetic is exact.
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);
  cache::ArtifactCache C;
  constexpr unsigned K = 4;
  uint64_t NumFunctions = 0;
  for (unsigned I = 0; I != K; ++I) {
    PipelineOptions PO;
    PO.Opt.Scheme = PlacementScheme::NI;
    PO.Cache.Enabled = true;
    PO.Cache.Cache = &C;
    CompileResult R = compileSource(P->Source, PO);
    ASSERT_TRUE(R.Success);
    NumFunctions = R.M->functions().size();
  }
  cache::ArtifactCache::Stats S = C.stats();
  EXPECT_EQ(S.FrontendMisses, 1u);
  EXPECT_EQ(S.FrontendHits, K - 1);
  EXPECT_EQ(S.ContextMisses, NumFunctions);
  EXPECT_EQ(S.ContextHits, (K - 1) * NumFunctions);
  EXPECT_EQ(S.LoopMisses, 0u);
  EXPECT_EQ(S.LoopHits, 0u);
  EXPECT_GT(S.Bytes, 0u);

  C.resetStats();
  S = C.stats();
  EXPECT_EQ(S.FrontendHits + S.FrontendMisses + S.analysisHits() +
                S.analysisMisses() + S.Evictions,
            0u);
  EXPECT_GT(S.Bytes, 0u); // resetStats keeps the contents (and the gauge)
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// INX synthesis tests: checks are rewritten into induction-expression
/// form (c*h + base), basic loop variables are materialised, and the
/// rewritten program behaves identically to the original.
///
//===----------------------------------------------------------------------===//

#include "checks/INXSynthesis.h"

#include "TestHelpers.h"
#include "ir/Verifier.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

/// Counts checks whose range-expression mentions \p Sym.
unsigned checksUsing(const Function &F, SymbolID Sym) {
  unsigned N = 0;
  for (const auto &BB : F)
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::Check && I.Check.expr().references(Sym))
        ++N;
  return N;
}

TEST(INXSynthesis, RewritesLinearChecksOverBasicVariable) {
  CompileResult R = compileNaive(R"(
program p
  integer n, i
  real a(100)
  n = 20
  do i = 1, n
    a(2 * i + 3) = 0.0
  end do
  print a(5)
end program
)");
  Function *F = R.M->entry();
  SymbolID I = F->symbols().lookup("i");
  ASSERT_GT(checksUsing(*F, I), 0u);

  INXStats Stats = synthesizeINXChecks(*F);
  EXPECT_EQ(Stats.BasicVarsMaterialized, 1u);
  EXPECT_GT(Stats.RewrittenLinear, 0u);

  // The loop-body checks now use the basic variable h, not i.
  const DoLoopInfo &DL = F->doLoops()[0];
  ASSERT_NE(DL.BasicVar, InvalidSymbol);
  EXPECT_EQ(checksUsing(*F, I), 0u);
  EXPECT_GT(checksUsing(*F, DL.BasicVar), 0u);

  // The subscript 2*i+3 with i = 1+h is 2*h+5: the upper check becomes
  // (2*h <= 95) in canonical form.
  bool Found = false;
  for (const auto &BB : *F)
    for (const Instruction &Ins : BB->instructions())
      if (Ins.Op == Opcode::Check &&
          Ins.Check.expr().coeff(DL.BasicVar) == 2 &&
          Ins.Check.bound() == 95)
        Found = true;
  EXPECT_TRUE(Found);

  DiagnosticEngine D;
  EXPECT_TRUE(verifyFunction(*F, D)) << D.render();
}

TEST(INXSynthesis, BehaviourUnchanged) {
  const char *Source = R"(
program p
  integer n, i, j, k
  real a(64), b(64)
  n = 7
  k = 3
  do i = 1, n
    k = k + 2
    a(k) = a(k) + 1.0
    do j = i, n
      b(j) = b(j) + a(j) * 0.5
    end do
  end do
  print a(5)
  print b(6)
end program
)";
  CompileResult Plain = compileNaive(Source);
  ExecResult PlainRun = interpret(*Plain.M);

  CompileResult R = compileNaive(Source);
  synthesizeINXChecks(*R.M->entry());
  ExecResult InxRun = interpret(*R.M);

  EXPECT_EQ(PlainRun.St, InxRun.St);
  EXPECT_EQ(PlainRun.Output, InxRun.Output);
  // Check counts are identical: the rewrite is one-for-one.
  EXPECT_EQ(PlainRun.DynChecks, InxRun.DynChecks);
}

TEST(INXSynthesis, AccumulatorBecomesLinear) {
  // The checks on a(k) with k = k + 2 per iteration are not linear in
  // any program variable syntactically, but become 2*h + c after
  // synthesis -- the INX advantage the paper studies.
  CompileResult R = compileNaive(R"(
program p
  integer n, i, k
  real a(100)
  n = 10
  k = 0
  do i = 1, n
    k = k + 2
    a(k) = 1.0
  end do
  print a(2)
end program
)");
  Function *F = R.M->entry();
  INXStats Stats = synthesizeINXChecks(*F);
  EXPECT_GT(Stats.RewrittenLinear, 0u);
  const DoLoopInfo &DL = F->doLoops()[0];
  bool Found = false;
  for (const auto &BB : *F)
    for (const Instruction &Ins : BB->instructions())
      if (Ins.Op == Opcode::Check &&
          Ins.Check.expr().coeff(DL.BasicVar) == 2)
        Found = true;
  EXPECT_TRUE(Found);
}

TEST(INXSynthesis, RecomputedInvariantUsesSnapshot) {
  // base is assigned inside the loop from loop-entry values: the check on
  // xx(base + 1) rewrites to a snapshot-based invariant expression.
  CompileResult R = compileNaive(R"(
program p
  integer n, i, base, m
  real xx(50)
  n = 6
  m = int(xx(1)) + 2
  do i = 1, n
    m = m + 0
    base = m * 1
    xx(base + 1) = 0.0
  end do
  print xx(3)
end program
)");
  Function *F = R.M->entry();
  SymbolID Base = F->symbols().lookup("base");
  INXStats Stats = synthesizeINXChecks(*F);
  // The checks no longer reference base (killed every iteration) --
  // they reference a loop-entry snapshot of m's value instead (m itself
  // is also assigned inside the loop).
  EXPECT_EQ(checksUsing(*F, Base), 0u);
  EXPECT_GT(Stats.RewrittenInvariant, 0u);
  EXPECT_GT(Stats.SnapshotsInserted, 0u);

  ExecResult E = interpret(*R.M);
  EXPECT_EQ(E.St, ExecResult::Status::Ok) << E.FaultMessage;
}

TEST(INXSynthesis, IndirectSubscriptsStayPRX) {
  CompileResult R = compileNaive(R"(
program p
  integer n, i, t
  integer idx(20)
  real a(20)
  n = 8
  do i = 1, n
    idx(i) = i
    t = idx(i)
    a(t) = 0.0
  end do
  print a(3)
end program
)");
  Function *F = R.M->entry();
  SymbolID T = F->symbols().lookup("t");
  unsigned Before = checksUsing(*F, T);
  ASSERT_GT(Before, 0u);
  synthesizeINXChecks(*F);
  // Checks on the loaded subscript cannot be rewritten.
  EXPECT_EQ(checksUsing(*F, T), Before);
}

TEST(INXSynthesis, WholeSuiteStaysCorrect) {
  // Every suite program must behave identically after INX synthesis.
  for (const SuiteProgram &P : benchmarkSuite()) {
    CompileResult Plain = compileNaive(P.Source);
    ExecResult PlainRun = interpret(*Plain.M);

    CompileResult R = compileNaive(P.Source, CheckSource::INX);
    ExecResult InxRun = interpret(*R.M);
    EXPECT_EQ(PlainRun.St, InxRun.St) << P.Name;
    EXPECT_EQ(PlainRun.Output, InxRun.Output) << P.Name;
    EXPECT_EQ(PlainRun.DynChecks, InxRun.DynChecks) << P.Name;
  }
}

} // namespace

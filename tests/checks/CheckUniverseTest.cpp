#include "checks/CheckUniverse.h"

#include "ir/Symbol.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

class CheckUniverseTest : public ::testing::Test {
protected:
  void SetUp() override {
    I = Syms.createScalar("i", ScalarType::Int);
    N = Syms.createScalar("n", ScalarType::Int);
  }
  SymbolTable Syms;
  SymbolID I = 0, N = 0;
};

TEST_F(CheckUniverseTest, InterningDeduplicates) {
  CheckUniverse U;
  CheckID A = U.intern(CheckExpr(LinearExpr::term(I), 10));
  CheckID B = U.intern(CheckExpr(LinearExpr::term(I), 10));
  EXPECT_EQ(A, B);
  EXPECT_EQ(U.size(), 1u);
  // Canonicalisation makes (i + 1 <= 11) the same check.
  LinearExpr E = LinearExpr::term(I) + LinearExpr::constant(1);
  CheckID C = U.intern(CheckExpr(E, 11));
  EXPECT_EQ(C, A);
}

TEST_F(CheckUniverseTest, FamiliesShareRangeExpression) {
  CheckUniverse U;
  CheckID C10 = U.intern(CheckExpr(LinearExpr::term(I), 10));
  CheckID C5 = U.intern(CheckExpr(LinearExpr::term(I), 5));
  CheckID CN = U.intern(CheckExpr(LinearExpr::term(N), 10));
  EXPECT_EQ(U.familyOf(C10), U.familyOf(C5));
  EXPECT_NE(U.familyOf(C10), U.familyOf(CN));
  EXPECT_EQ(U.numFamilies(), 2u);

  // Members ordered ascending by bound: strongest first.
  const auto &Members = U.familyMembers(U.familyOf(C10));
  ASSERT_EQ(Members.size(), 2u);
  EXPECT_EQ(Members[0], C5);
  EXPECT_EQ(Members[1], C10);
}

TEST_F(CheckUniverseTest, FamilyPerCheckMode) {
  CheckUniverse U(/*FamilyPerCheck=*/true);
  CheckID A = U.intern(CheckExpr(LinearExpr::term(I), 10));
  CheckID B = U.intern(CheckExpr(LinearExpr::term(I), 5));
  EXPECT_NE(U.familyOf(A), U.familyOf(B));
  EXPECT_EQ(U.numFamilies(), 2u);
}

TEST_F(CheckUniverseTest, SymbolIndex) {
  CheckUniverse U;
  LinearExpr E = LinearExpr::term(I) + LinearExpr::term(N, -4);
  CheckID A = U.intern(CheckExpr(E, 1));
  CheckID B = U.intern(CheckExpr(LinearExpr::term(N), 3));
  const auto &ForI = U.checksUsingSymbol(I);
  ASSERT_EQ(ForI.size(), 1u);
  EXPECT_EQ(ForI[0], A);
  const auto &ForN = U.checksUsingSymbol(N);
  EXPECT_EQ(ForN.size(), 2u);
  EXPECT_TRUE(U.checksUsingSymbol(12345).empty());
  (void)B;
}

TEST_F(CheckUniverseTest, GenerationBumpsOnNewChecksOnly) {
  CheckUniverse U;
  uint64_t G0 = U.generation();
  U.intern(CheckExpr(LinearExpr::term(I), 10));
  uint64_t G1 = U.generation();
  EXPECT_GT(G1, G0);
  U.intern(CheckExpr(LinearExpr::term(I), 10));
  EXPECT_EQ(U.generation(), G1);
}

TEST_F(CheckUniverseTest, FindWithoutInterning) {
  CheckUniverse U;
  EXPECT_EQ(U.find(CheckExpr(LinearExpr::term(I), 10)), InvalidCheck);
  CheckID A = U.intern(CheckExpr(LinearExpr::term(I), 10));
  EXPECT_EQ(U.find(CheckExpr(LinearExpr::term(I), 10)), A);
}

} // namespace

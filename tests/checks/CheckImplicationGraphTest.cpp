//===----------------------------------------------------------------------===//
///
/// \file
/// Check Implication Graph tests, reproducing the paper's Figure 3 (the
/// CIG of the Figure 1 fragment) and Figure 4 (weighted edges between
/// families F3 = {n <= .} and F4 = {m <= .} where Check(n <= 6) implies
/// Check(m <= 10), giving an edge of weight 4; then Check(n <= 1) is as
/// strong as Check(m <= 7) but not as strong as Check(m <= 3)).
///
//===----------------------------------------------------------------------===//

#include "checks/CheckImplicationGraph.h"

#include "ir/Symbol.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

class CIGTest : public ::testing::Test {
protected:
  void SetUp() override {
    N = Syms.createScalar("n", ScalarType::Int);
    M = Syms.createScalar("m", ScalarType::Int);
  }
  SymbolTable Syms;
  SymbolID N = 0, M = 0;
};

TEST_F(CIGTest, WithinFamilyStrength) {
  CheckUniverse U;
  CheckID C5 = U.intern(CheckExpr(LinearExpr::term(N), 5));
  CheckID C10 = U.intern(CheckExpr(LinearExpr::term(N), 10));
  CheckImplicationGraph CIG(U);
  EXPECT_TRUE(CIG.isAsStrongAs(C5, C10));
  EXPECT_FALSE(CIG.isAsStrongAs(C10, C5));
  EXPECT_TRUE(CIG.isAsStrongAs(C5, C5));
}

TEST_F(CIGTest, Figure1FamilyStructure) {
  // The four checks of Figure 1(a) collapse into two families:
  // F1 = {-2n <= -5, -2n <= -6} and F2 = {2n <= 10, 2n <= 11}.
  CheckUniverse U;
  CheckID C1 = U.intern(CheckExpr(LinearExpr::term(N, -2), -5));
  CheckID C2 = U.intern(CheckExpr(LinearExpr::term(N, 2), 10));
  CheckID C3 = U.intern(CheckExpr(LinearExpr::term(N, -2), -6));
  CheckID C4 = U.intern(CheckExpr(LinearExpr::term(N, 2), 11));
  EXPECT_EQ(U.numFamilies(), 2u);
  EXPECT_EQ(U.familyOf(C1), U.familyOf(C3));
  EXPECT_EQ(U.familyOf(C2), U.familyOf(C4));

  CheckImplicationGraph CIG(U);
  // C2 implies C4 (2n <= 10 makes 2n <= 11 redundant): Figure 1(b).
  EXPECT_TRUE(CIG.isAsStrongAs(C2, C4));
  // C3 implies C1: the strengthening of Figure 1(c).
  EXPECT_TRUE(CIG.isAsStrongAs(C3, C1));
  EXPECT_FALSE(CIG.isAsStrongAs(C1, C3));
}

TEST_F(CIGTest, Figure4WeightedCrossFamilyEdge) {
  CheckUniverse U;
  CheckID N6 = U.intern(CheckExpr(LinearExpr::term(N), 6));
  CheckID N1 = U.intern(CheckExpr(LinearExpr::term(N), 1));
  CheckID M10 = U.intern(CheckExpr(LinearExpr::term(M), 10));
  CheckID M7 = U.intern(CheckExpr(LinearExpr::term(M), 7));
  CheckID M3 = U.intern(CheckExpr(LinearExpr::term(M), 3));

  CheckImplicationGraph CIG(U);
  // Discover: Check(n <= 6) => Check(m <= 10): edge weight 10 - 6 = 4.
  CIG.addImplication(N6, M10);
  EXPECT_EQ(CIG.pathWeight(U.familyOf(N6), U.familyOf(M10)), 4);

  // The paper's inferences: n <= 1 is as strong as m <= 7 (1+4 <= 7),
  // but not as strong as m <= 3.
  EXPECT_TRUE(CIG.isAsStrongAs(N1, M7));
  EXPECT_FALSE(CIG.isAsStrongAs(N1, M3));
  // No reverse implication.
  EXPECT_FALSE(CIG.isAsStrongAs(M3, N1));
}

TEST_F(CIGTest, ParallelEdgesKeepMinimumWeight) {
  CheckUniverse U;
  CheckID N6 = U.intern(CheckExpr(LinearExpr::term(N), 6));
  CheckID M10 = U.intern(CheckExpr(LinearExpr::term(M), 10));
  CheckID M8 = U.intern(CheckExpr(LinearExpr::term(M), 8));
  CheckImplicationGraph CIG(U);
  CIG.addImplication(N6, M10); // weight 4
  CIG.addImplication(N6, M8);  // weight 2: the stronger fact wins
  EXPECT_EQ(CIG.pathWeight(U.familyOf(N6), U.familyOf(M10)), 2);
}

TEST_F(CIGTest, PathAccumulation) {
  SymbolID K = Syms.createScalar("k", ScalarType::Int);
  CheckUniverse U;
  CheckID CN = U.intern(CheckExpr(LinearExpr::term(N), 0));
  CheckID CM = U.intern(CheckExpr(LinearExpr::term(M), 0));
  CheckID CK = U.intern(CheckExpr(LinearExpr::term(K), 0));
  CheckImplicationGraph CIG(U);
  CIG.addFamilyEdge(U.familyOf(CN), U.familyOf(CM), 3);
  CIG.addFamilyEdge(U.familyOf(CM), U.familyOf(CK), -1);
  // Path n -> m -> k accumulates 3 + (-1) = 2.
  EXPECT_EQ(CIG.pathWeight(U.familyOf(CN), U.familyOf(CK)), 2);
  // (n <= 0) as strong as (k <= 2) but not (k <= 1).
  CheckID K2 = U.intern(CheckExpr(LinearExpr::term(K), 2));
  CheckID K1 = U.intern(CheckExpr(LinearExpr::term(K), 1));
  EXPECT_TRUE(CIG.isAsStrongAs(CN, K2));
  EXPECT_FALSE(CIG.isAsStrongAs(CN, K1));
}

TEST_F(CIGTest, WeakerClosureAvailability) {
  CheckUniverse U;
  CheckID N5 = U.intern(CheckExpr(LinearExpr::term(N), 5));
  CheckID N8 = U.intern(CheckExpr(LinearExpr::term(N), 8));
  CheckID N3 = U.intern(CheckExpr(LinearExpr::term(N), 3));
  CheckID M9 = U.intern(CheckExpr(LinearExpr::term(M), 9));
  CheckImplicationGraph CIG(U);
  CIG.addImplication(N5, M9); // weight 4

  DenseBitVector Bits(U.size());
  CIG.weakerClosure(N5, Bits);
  EXPECT_TRUE(Bits.test(N5));
  EXPECT_TRUE(Bits.test(N8)); // weaker in family
  EXPECT_FALSE(Bits.test(N3)); // stronger
  EXPECT_TRUE(Bits.test(M9)); // cross family via the edge
}

TEST_F(CIGTest, ImplicationModeNone) {
  CheckUniverse U(/*FamilyPerCheck=*/true);
  CheckID N5 = U.intern(CheckExpr(LinearExpr::term(N), 5));
  CheckID N8 = U.intern(CheckExpr(LinearExpr::term(N), 8));
  CheckImplicationGraph CIG(U, ImplicationMode::None);
  EXPECT_FALSE(CIG.isAsStrongAs(N5, N8));
  EXPECT_TRUE(CIG.isAsStrongAs(N5, N5));
  DenseBitVector Bits(U.size());
  CIG.weakerClosure(N5, Bits);
  EXPECT_EQ(Bits.count(), 1u);
}

TEST_F(CIGTest, ImplicationModeCrossFamilyOnly) {
  CheckUniverse U;
  CheckID N5 = U.intern(CheckExpr(LinearExpr::term(N), 5));
  CheckID N8 = U.intern(CheckExpr(LinearExpr::term(N), 8));
  CheckID M9 = U.intern(CheckExpr(LinearExpr::term(M), 9));
  CheckImplicationGraph CIG(U, ImplicationMode::CrossFamilyOnly);
  CIG.addImplication(N5, M9);
  // Within-family implications are disabled (the paper's LLS' variant)...
  EXPECT_FALSE(CIG.isAsStrongAs(N5, N8));
  // ...but cross-family edges still apply.
  EXPECT_TRUE(CIG.isAsStrongAs(N5, M9));
}

TEST_F(CIGTest, SameFamilyClosure) {
  CheckUniverse U;
  CheckID N5 = U.intern(CheckExpr(LinearExpr::term(N), 5));
  CheckID N8 = U.intern(CheckExpr(LinearExpr::term(N), 8));
  CheckID M9 = U.intern(CheckExpr(LinearExpr::term(M), 9));
  CheckImplicationGraph CIG(U);
  CIG.addImplication(N5, M9);
  DenseBitVector Bits(U.size());
  CIG.weakerClosureSameFamily(N5, Bits);
  EXPECT_TRUE(Bits.test(N5));
  EXPECT_TRUE(Bits.test(N8));
  // The anticipatability closure never crosses families (paper 3.2).
  EXPECT_FALSE(Bits.test(M9));
}

} // namespace

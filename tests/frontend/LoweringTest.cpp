//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering tests: naive check insertion (one lower and one upper check
/// per subscript per dimension), canonical check forms, loop shape and
/// metadata, and the syntactic-atom canonicalisation for non-affine
/// subscripts.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "ir/Verifier.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

std::vector<const Instruction *> allChecks(const Function &F) {
  std::vector<const Instruction *> Out;
  for (const auto &BB : F)
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::Check)
        Out.push_back(&I);
  return Out;
}

TEST(Lowering, NaiveCheckPairPerSubscript) {
  CompileResult R = compileNaive(R"(
program p
  real a(5:10)
  integer i
  i = 7
  a(i) = 1.0
end program
)");
  Function *F = R.M->entry();
  auto Checks = allChecks(*F);
  ASSERT_EQ(Checks.size(), 2u);
  SymbolID I = F->symbols().lookup("i");
  // Lower: (i >= 5) canonicalised to (-i <= -5); upper: (i <= 10).
  EXPECT_EQ(Checks[0]->Check.expr().coeff(I), -1);
  EXPECT_EQ(Checks[0]->Check.bound(), -5);
  EXPECT_FALSE(Checks[0]->Origin.IsUpper);
  EXPECT_EQ(Checks[1]->Check.expr().coeff(I), 1);
  EXPECT_EQ(Checks[1]->Check.bound(), 10);
  EXPECT_TRUE(Checks[1]->Origin.IsUpper);
  EXPECT_EQ(Checks[0]->Origin.ArrayName, "a");
}

TEST(Lowering, MultiDimChecksPerDimension) {
  CompileResult R = compileNaive(R"(
program p
  real a(4, 0:7)
  integer i, j
  i = 2
  j = 3
  a(i, j) = 1.0
end program
)");
  auto Checks = allChecks(*R.M->entry());
  // Two dimensions, two checks each.
  ASSERT_EQ(Checks.size(), 4u);
  EXPECT_EQ(Checks[2]->Check.bound(), 0); // -j <= 0 (lower bound 0)
  EXPECT_EQ(Checks[3]->Check.bound(), 7);
}

TEST(Lowering, CanonicalLinearSubscript) {
  // a(2*n - 1) with bounds 5..10 gives checks (-2n <= -6), (2n <= 11):
  // the paper's canonical form with constants folded into the bound.
  CompileResult R = compileNaive(R"(
program p
  real a(5:10)
  integer n
  n = 4
  a(2 * n - 1) = 1.0
end program
)");
  Function *F = R.M->entry();
  auto Checks = allChecks(*F);
  ASSERT_EQ(Checks.size(), 2u);
  SymbolID N = F->symbols().lookup("n");
  EXPECT_EQ(Checks[0]->Check.expr().coeff(N), -2);
  EXPECT_EQ(Checks[0]->Check.bound(), -6);
  EXPECT_EQ(Checks[1]->Check.expr().coeff(N), 2);
  EXPECT_EQ(Checks[1]->Check.bound(), 11);
}

TEST(Lowering, ConstantSubscriptMakesConstantCheck) {
  CompileResult R = compileNaive(R"(
program p
  real a(10)
  a(3) = 1.0
end program
)");
  auto Checks = allChecks(*R.M->entry());
  ASSERT_EQ(Checks.size(), 2u);
  EXPECT_TRUE(Checks[0]->Check.isCompileTimeConstant());
  EXPECT_TRUE(Checks[0]->Check.evaluatesToTrue());
}

TEST(Lowering, SyntacticAtomsUnifyNonAffineSubscripts) {
  // Two accesses q(idx(k)) in one block: the checks on the loaded value
  // share one atom symbol, so they fall into the same family.
  CompileResult R = compileNaive(R"(
program p
  integer idx(10)
  real q(10)
  integer k
  real x
  k = 2
  idx(2) = 3
  x = q(idx(k)) + q(idx(k))
  print x
end program
)");
  Function *F = R.M->entry();
  auto Checks = allChecks(*F);
  // Find the checks over a temp (atom) symbol: the two upper-bound checks
  // on the q subscript must use the same symbol.
  std::vector<const Instruction *> AtomChecks;
  for (const Instruction *C : Checks) {
    const auto &Terms = C->Check.expr().terms();
    if (Terms.size() == 1 &&
        F->symbols().get(Terms[0].first).Kind == SymbolKind::Temp &&
        C->Check.bound() == 10)
      AtomChecks.push_back(C);
  }
  ASSERT_EQ(AtomChecks.size(), 2u);
  EXPECT_EQ(AtomChecks[0]->Check.expr(), AtomChecks[1]->Check.expr());
}

TEST(Lowering, AtomsInvalidatedByStores) {
  // A store to idx between the two accesses must break the atom sharing:
  // the loaded values can differ.
  CompileResult R = compileNaive(R"(
program p
  integer idx(10)
  real q(10)
  integer k
  real x, y
  k = 2
  idx(2) = 3
  x = q(idx(k))
  idx(2) = 4
  y = q(idx(k))
  print x + y
end program
)");
  Function *F = R.M->entry();
  std::vector<LinearExpr> AtomExprs;
  for (const auto &BB : *F)
    for (const Instruction &I : BB->instructions()) {
      if (I.Op != Opcode::Check || I.Check.bound() != 10)
        continue;
      const auto &Terms = I.Check.expr().terms();
      if (Terms.size() == 1 &&
          F->symbols().get(Terms[0].first).Kind == SymbolKind::Temp)
        AtomExprs.push_back(I.Check.expr());
    }
  ASSERT_EQ(AtomExprs.size(), 2u);
  EXPECT_NE(AtomExprs[0], AtomExprs[1]);
}

TEST(Lowering, DoLoopShapeAndMetadata) {
  CompileResult R = compileNaive(R"(
program p
  integer i, n, s
  n = 5
  do i = 2, 2 * n, 3
    s = s + i
  end do
  print s
end program
)");
  Function *F = R.M->entry();
  ASSERT_EQ(F->doLoops().size(), 1u);
  const DoLoopInfo &DL = F->doLoops()[0];
  EXPECT_EQ(DL.Step, 3);
  EXPECT_EQ(DL.LowerBound.constantPart(), 2);
  SymbolID N = F->symbols().lookup("n");
  EXPECT_EQ(DL.UpperBound.coeff(N), 2);

  // Canonical shape: preheader jumps to header; header branches to body
  // and exit; latch increments the index and jumps to the header.
  F->recomputePreds();
  EXPECT_EQ(F->block(DL.Preheader)->successors(),
            std::vector<BlockID>{DL.Header});
  auto HeaderSuccs = F->block(DL.Header)->successors();
  ASSERT_EQ(HeaderSuccs.size(), 2u);
  EXPECT_EQ(HeaderSuccs[0], DL.BodyEntry);
  const Instruction &Inc = F->block(DL.Latch)->instructions()[0];
  EXPECT_EQ(Inc.Op, Opcode::Add);
  EXPECT_EQ(Inc.Dest, DL.IndexVar);
}

TEST(Lowering, NoChecksWhenDisabled) {
  PipelineOptions PO;
  PO.Optimize = false;
  PO.Lowering.InsertChecks = false;
  CompileResult R = compileOrDie(R"(
program p
  real a(10)
  integer i
  i = 4
  a(i) = 1.0
end program
)",
                                 PO);
  EXPECT_TRUE(allChecks(*R.M->entry()).empty());
}

TEST(Lowering, FunctionCallsLowerToCallInstructions) {
  CompileResult R = compileNaive(R"(
program p
  integer x
  x = double_it(21)
  print x
end program
function double_it(v) : integer
  integer v
  return v * 2
end function
)");
  bool FoundCall = false;
  for (const auto &BB : *R.M->entry())
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::Call) {
        FoundCall = true;
        EXPECT_EQ(I.Callee, "double_it");
        EXPECT_NE(I.Dest, InvalidSymbol);
      }
  EXPECT_TRUE(FoundCall);
  ExecResult E = interpret(*R.M);
  ASSERT_EQ(E.Output.size(), 1u);
  EXPECT_EQ(E.Output[0], "42");
}

TEST(Lowering, WholeModuleVerifies) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    CompileResult R = compileNaive(P.Source);
    DiagnosticEngine D;
    EXPECT_TRUE(verifyModule(*R.M, D)) << P.Name << ":\n" << D.render();
  }
}

} // namespace

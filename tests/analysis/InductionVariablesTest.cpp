//===----------------------------------------------------------------------===//
///
/// \file
/// Induction-variable analysis tests, including a reproduction of the
/// paper's Figure 2: in
///
///     j = 0; k = 3; m = 5
///     for i = 0 to n-1:
///        j = j + i        -> polynomial  (h*(h+1)/2 shape)
///        k = k + m        -> linear      (5*h + 8 after the update)
///        A[k] = 2*m + 1   -> invariant
///
/// the analysis classifies i as linear, j as polynomial, k as linear with
/// constant step 5 (constant propagation of m), and 2*m+1 as invariant.
///
//===----------------------------------------------------------------------===//

#include "analysis/InductionVariables.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

struct IVFixture {
  CompileResult R;
  Function *F = nullptr;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<SSA> S;
  std::unique_ptr<InductionAnalysis> IV;

  explicit IVFixture(const std::string &Source) : R(compileNaive(Source)) {
    F = R.M->entry();
    F->recomputePreds();
    DT = std::make_unique<DominatorTree>(*F);
    LI = std::make_unique<LoopInfo>(*F, *DT);
    S = std::make_unique<SSA>(*F, *DT);
    IV = std::make_unique<InductionAnalysis>(*S, *LI, *DT);
  }

  /// Classification of symbol \p Name at the first instruction of the
  /// innermost loop's body that uses it.
  IVExpr classifyInBody(const char *Name, const Loop *L) {
    SymbolID Sym = F->symbols().lookup(Name);
    EXPECT_NE(Sym, InvalidSymbol) << Name;
    for (BlockID B : L->Blocks) {
      const auto &Insts = F->block(B)->instructions();
      for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
        if (S->useOfSymbol(B, Idx, Sym) != InvalidSSAValue)
          return IV->classifyUse(B, Idx, Sym, L);
      }
    }
    ADD_FAILURE() << "no use of " << Name << " in loop";
    return IVExpr::unknown();
  }

  const Loop *onlyLoop() {
    EXPECT_EQ(LI->numLoops(), 1u);
    return LI->loopsInnermostFirst()[0];
  }
};

TEST(InductionVariables, Figure2Classifications) {
  IVFixture Fx(R"(
program fig2
  integer n, i, j, k, m
  real a(200)
  n = 10
  j = 0
  k = 3
  m = 5
  do i = 0, n - 1
    j = j + i
    k = k + m
    a(k) = 2.0 * real(m) + 1.0
  end do
  print a(8)
end program
)");
  const Loop *L = Fx.onlyLoop();

  // i: the basic induction variable, 1*h + 0 (initial value 0, step 1).
  IVExpr I = Fx.classifyInBody("i", L);
  EXPECT_EQ(I.K, IVExpr::Kind::Linear);
  EXPECT_EQ(I.Coeff, 1);
  EXPECT_TRUE(I.Base.empty());
  EXPECT_EQ(I.BaseConst, 0);

  // j accumulates a linear value: polynomial, as in Figure 2.
  IVExpr J = Fx.classifyInBody("j", L);
  EXPECT_EQ(J.K, IVExpr::Kind::Polynomial);

  // k steps by m = 5 each iteration: Linear with constant coefficient 5
  // (constant propagation resolves m), matching the paper's 5*h + 8 for
  // the post-update value; the use inside a(k) is the post-update k.
  IVExpr K = Fx.classifyInBody("k", L);
  EXPECT_EQ(K.K, IVExpr::Kind::Linear);
  EXPECT_EQ(K.Coeff, 5);

  // m: invariant and constant-folded.
  IVExpr M = Fx.classifyInBody("m", L);
  EXPECT_EQ(M.K, IVExpr::Kind::Invariant);
  EXPECT_TRUE(M.isConstant());
  EXPECT_EQ(M.BaseConst, 5);
}

TEST(InductionVariables, SymbolicInitialValue) {
  IVFixture Fx(R"(
program p
  integer n, i, k, base
  real a(100)
  n = 8
  base = n * 2
  k = base
  do i = 1, n
    k = k + 1
    a(k) = 0.0
  end do
  print a(17)
end program
)");
  const Loop *L = Fx.onlyLoop();
  IVExpr K = Fx.classifyInBody("k", L);
  EXPECT_EQ(K.K, IVExpr::Kind::Linear);
  EXPECT_EQ(K.Coeff, 1);
  // base = n*2 = 16 folds to a constant through the copy chain.
  EXPECT_TRUE(K.Base.empty());
}

TEST(InductionVariables, DerivedLinearCombination) {
  IVFixture Fx(R"(
program p
  integer n, i, t
  real a(100)
  n = 9
  do i = 1, n
    t = 3 * i - 2
    a(t) = 1.0
  end do
  print a(1)
end program
)");
  const Loop *L = Fx.onlyLoop();
  IVExpr T = Fx.classifyInBody("t", L);
  EXPECT_EQ(T.K, IVExpr::Kind::Linear);
  EXPECT_EQ(T.Coeff, 3);
  // i = 1 + h, so t = 3*(1 + h) - 2 = 3*h + 1.
  EXPECT_EQ(T.BaseConst, 1);
}

TEST(InductionVariables, RecomputedInvariant) {
  // t is assigned inside the loop but always to the same (symbolic)
  // value: classified invariant with the region-constant base.
  IVFixture Fx(R"(
program p
  integer n, m, i, t
  real a(100)
  n = 6
  do i = 1, n
    t = m + 2
    a(t + i) = 0.0
  end do
  print a(3)
end program
)");
  const Loop *L = Fx.onlyLoop();
  IVExpr T = Fx.classifyInBody("t", L);
  EXPECT_EQ(T.K, IVExpr::Kind::Invariant);
  EXPECT_EQ(T.Base.size(), 1u);
  EXPECT_EQ(T.BaseConst, 2);
}

TEST(InductionVariables, LoadsAreUnknown) {
  IVFixture Fx(R"(
program p
  integer n, i, t
  integer idx(50)
  real a(50)
  n = 6
  do i = 1, n
    t = idx(i)
    a(t) = 0.0
  end do
  print a(1)
end program
)");
  const Loop *L = Fx.onlyLoop();
  IVExpr T = Fx.classifyInBody("t", L);
  EXPECT_EQ(T.K, IVExpr::Kind::Unknown);
}

TEST(InductionVariables, DescendingLoopNegativeStep) {
  IVFixture Fx(R"(
program p
  integer n, i
  real a(50)
  n = 9
  do i = n, 1, -1
    a(i) = 0.0
  end do
  print a(1)
end program
)");
  const Loop *L = Fx.onlyLoop();
  IVExpr I = Fx.classifyInBody("i", L);
  EXPECT_EQ(I.K, IVExpr::Kind::Linear);
  EXPECT_EQ(I.Coeff, -1);
}

TEST(InductionVariables, OuterIndexInvariantInInner) {
  IVFixture Fx(R"(
program p
  integer n, i, j
  real a(40, 40)
  n = 5
  do i = 1, n
    do j = 1, n
      a(i, j) = 0.0
    end do
  end do
  print a(1, 1)
end program
)");
  ASSERT_EQ(Fx.LI->numLoops(), 2u);
  const Loop *Inner = Fx.LI->loopsInnermostFirst()[0];
  ASSERT_EQ(Inner->Depth, 2u);
  IVExpr I = Fx.classifyInBody("i", Inner);
  EXPECT_EQ(I.K, IVExpr::Kind::Invariant);
  IVExpr J = Fx.classifyInBody("j", Inner);
  EXPECT_EQ(J.K, IVExpr::Kind::Linear);
}

TEST(InductionVariables, GeometricRecurrenceIsUnknown) {
  IVFixture Fx(R"(
program p
  integer n, i, g
  real a(1000)
  n = 5
  g = 1
  do i = 1, n
    g = g * 2
    a(g) = 0.0
  end do
  print a(2)
end program
)");
  const Loop *L = Fx.onlyLoop();
  IVExpr G = Fx.classifyInBody("g", L);
  EXPECT_EQ(G.K, IVExpr::Kind::Unknown);
}

} // namespace

#include "analysis/Dominators.h"

#include "analysis/CFGUtils.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

/// Builds the classic diamond: entry -> {then, else} -> join -> exit(ret).
struct Diamond {
  Function F{"f"};
  BlockID Entry, Then, Else, Join;

  Diamond() {
    IRBuilder B(F);
    SymbolID C = F.symbols().createScalar("c", ScalarType::Bool);
    BasicBlock *E = B.createBlock("entry");
    BasicBlock *T = B.createBlock("then");
    BasicBlock *El = B.createBlock("else");
    BasicBlock *J = B.createBlock("join");
    Entry = E->id();
    Then = T->id();
    Else = El->id();
    Join = J->id();
    B.setInsertBlock(E);
    B.emitBr(Value::sym(C), Then, Else);
    B.setInsertBlock(T);
    B.emitJump(Join);
    B.setInsertBlock(El);
    B.emitJump(Join);
    B.setInsertBlock(J);
    B.emitRet();
    F.recomputePreds();
  }
};

TEST(Dominators, DiamondIdoms) {
  Diamond D;
  DominatorTree DT(D.F);
  EXPECT_EQ(DT.idom(D.Entry), InvalidBlock);
  EXPECT_EQ(DT.idom(D.Then), D.Entry);
  EXPECT_EQ(DT.idom(D.Else), D.Entry);
  EXPECT_EQ(DT.idom(D.Join), D.Entry);

  EXPECT_TRUE(DT.dominates(D.Entry, D.Join));
  EXPECT_TRUE(DT.dominates(D.Join, D.Join));
  EXPECT_FALSE(DT.dominates(D.Then, D.Join));
  EXPECT_FALSE(DT.dominates(D.Join, D.Then));
}

TEST(Dominators, DiamondFrontiers) {
  Diamond D;
  DominatorTree DT(D.F);
  // Both branch blocks have the join in their frontier; the entry has
  // nothing (it dominates everything).
  EXPECT_EQ(DT.frontier(D.Then), std::vector<BlockID>{D.Join});
  EXPECT_EQ(DT.frontier(D.Else), std::vector<BlockID>{D.Join});
  EXPECT_TRUE(DT.frontier(D.Entry).empty());
}

TEST(Dominators, LoopFrontierContainsHeader) {
  // entry -> header; header -> {body, exit}; body -> header.
  Function F("f");
  IRBuilder B(F);
  SymbolID C = F.symbols().createScalar("c", ScalarType::Bool);
  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Header = B.createBlock("header");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *Exit = B.createBlock("exit");
  B.setInsertBlock(Entry);
  B.emitJump(Header->id());
  B.setInsertBlock(Header);
  B.emitBr(Value::sym(C), Body->id(), Exit->id());
  B.setInsertBlock(Body);
  B.emitJump(Header->id());
  B.setInsertBlock(Exit);
  B.emitRet();
  F.recomputePreds();

  DominatorTree DT(F);
  EXPECT_EQ(DT.idom(Header->id()), Entry->id());
  EXPECT_EQ(DT.idom(Body->id()), Header->id());
  EXPECT_EQ(DT.idom(Exit->id()), Header->id());
  // The body's frontier is the header (back edge target), and the header
  // is in its own frontier through the loop.
  EXPECT_EQ(DT.frontier(Body->id()), std::vector<BlockID>{Header->id()});
  EXPECT_EQ(DT.frontier(Header->id()), std::vector<BlockID>{Header->id()});
}

TEST(Dominators, UnreachableBlocks) {
  Function F("f");
  IRBuilder B(F);
  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Dead = B.createBlock("dead");
  B.setInsertBlock(Entry);
  B.emitRet();
  B.setInsertBlock(Dead);
  B.emitRet();
  F.recomputePreds();

  DominatorTree DT(F);
  EXPECT_TRUE(DT.isReachable(Entry->id()));
  EXPECT_FALSE(DT.isReachable(Dead->id()));
  EXPECT_FALSE(DT.dominates(Entry->id(), Dead->id()));
  EXPECT_EQ(reversePostOrder(F).size(), 1u);
}

TEST(CFGUtils, RPOStartsAtEntryAndRespectsOrder) {
  Diamond D;
  std::vector<BlockID> RPO = reversePostOrder(D.F);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), D.Entry);
  EXPECT_EQ(RPO.back(), D.Join);
}

} // namespace

#include "analysis/SSA.h"

#include "TestHelpers.h"
#include "analysis/Dominators.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

/// Finds the symbol named \p Name in \p F.
SymbolID sym(const Function &F, const char *Name) {
  SymbolID S = F.symbols().lookup(Name);
  EXPECT_NE(S, InvalidSymbol) << Name;
  return S;
}

TEST(SSA, StraightLineUsesResolveToDefs) {
  CompileResult R = compileNaive(R"(
program p
  integer x, y
  x = 1
  y = x + 2
  x = y + x
  print x
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  SSA S(*F, DT);

  // Walk the entry block: find defs of x and the use sites.
  BlockID B = F->entryBlock();
  const auto &Insts = F->block(B)->instructions();
  SymbolID X = sym(*F, "x");

  std::vector<SSAValueID> DefsOfX;
  std::vector<SSAValueID> UsesOfX;
  for (size_t I = 0; I != Insts.size(); ++I) {
    if (Insts[I].Dest == X)
      DefsOfX.push_back(S.defOf(B, I));
    SSAValueID U = S.useOfSymbol(B, I, X);
    if (U != InvalidSSAValue)
      UsesOfX.push_back(U);
  }
  ASSERT_EQ(DefsOfX.size(), 2u);
  ASSERT_GE(UsesOfX.size(), 2u);
  // The first use of x (in y = x + 2) resolves to the first def; the
  // print resolves to the second def.
  EXPECT_EQ(UsesOfX.front(), DefsOfX[0]);
  EXPECT_EQ(UsesOfX.back(), DefsOfX[1]);
}

TEST(SSA, PhiAtJoin) {
  CompileResult R = compileNaive(R"(
program p
  integer x
  logical c
  c = true
  if (c) then
    x = 1
  else
    x = 2
  end if
  print x
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  SSA S(*F, DT);

  SymbolID X = sym(*F, "x");
  // Exactly one phi for x at a join block, with two distinct incoming
  // instruction definitions.
  unsigned PhisForX = 0;
  for (BlockID B = 0; B != F->numBlocks(); ++B) {
    for (const SSAPhi &P : S.phisIn(B)) {
      if (P.Sym != X)
        continue;
      ++PhisForX;
      ASSERT_EQ(P.Incoming.size(), 2u);
      EXPECT_NE(P.Incoming[0], P.Incoming[1]);
      for (SSAValueID V : P.Incoming)
        EXPECT_EQ(S.def(V).K, SSADef::Kind::Inst);
    }
  }
  EXPECT_EQ(PhisForX, 1u);
}

TEST(SSA, LoopHeaderPhi) {
  CompileResult R = compileNaive(R"(
program p
  integer i, s
  s = 0
  do i = 1, 5
    s = s + i
  end do
  print s
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  SSA S(*F, DT);

  const DoLoopInfo &DL = F->doLoops()[0];
  SymbolID I = DL.IndexVar;
  // The header merges the preheader init and the latch increment of i.
  bool FoundHeaderPhi = false;
  for (const SSAPhi &P : S.phisIn(DL.Header)) {
    if (P.Sym != I)
      continue;
    FoundHeaderPhi = true;
    ASSERT_EQ(P.Incoming.size(), 2u);
    // One incoming from the preheader copy, one from the latch add.
    std::vector<SSADef::Kind> Kinds;
    std::vector<BlockID> Blocks;
    for (SSAValueID V : P.Incoming) {
      Kinds.push_back(S.def(V).K);
      Blocks.push_back(S.def(V).Block);
    }
    EXPECT_TRUE((Blocks[0] == DL.Preheader && Blocks[1] == DL.Latch) ||
                (Blocks[0] == DL.Latch && Blocks[1] == DL.Preheader));
  }
  EXPECT_TRUE(FoundHeaderPhi);

  // Uses of i inside the body resolve to the header phi.
  const auto &BodyInsts = F->block(DL.BodyEntry)->instructions();
  bool CheckedUse = false;
  for (size_t Idx = 0; Idx != BodyInsts.size(); ++Idx) {
    SSAValueID U = S.useOfSymbol(DL.BodyEntry, Idx, I);
    if (U == InvalidSSAValue)
      continue;
    EXPECT_EQ(S.def(U).K, SSADef::Kind::Phi);
    EXPECT_EQ(S.def(U).Block, DL.Header);
    CheckedUse = true;
  }
  EXPECT_TRUE(CheckedUse);
}

TEST(SSA, ParamsAndUninitialisedGetEntryValues) {
  CompileResult R = compileNaive(R"(
program p
  integer u
  print u
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  SSA S(*F, DT);
  SymbolID U = sym(*F, "u");
  const auto &Insts = F->block(0)->instructions();
  for (size_t I = 0; I != Insts.size(); ++I) {
    SSAValueID V = S.useOfSymbol(0, I, U);
    if (V == InvalidSSAValue)
      continue;
    EXPECT_EQ(S.def(V).K, SSADef::Kind::Entry);
    EXPECT_EQ(S.def(V).Sym, U);
  }
}

TEST(SSA, CheckOperandsAreUses) {
  CompileResult R = compileNaive(R"(
program p
  real a(10)
  integer i
  i = 3
  a(i) = 1.0
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  SSA S(*F, DT);
  SymbolID I = sym(*F, "i");
  const auto &Insts = F->block(0)->instructions();
  bool SawCheckUse = false;
  for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
    if (Insts[Idx].Op != Opcode::Check)
      continue;
    SSAValueID V = S.useOfSymbol(0, Idx, I);
    ASSERT_NE(V, InvalidSSAValue);
    EXPECT_EQ(S.def(V).K, SSADef::Kind::Inst);
    SawCheckUse = true;
  }
  EXPECT_TRUE(SawCheckUse);
}

} // namespace

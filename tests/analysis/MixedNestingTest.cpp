//===----------------------------------------------------------------------===//
///
/// \file
/// Mixed loop-nesting scenarios: do inside while, while inside do, and
/// deeply nested do loops — the loop forest, metadata attachment, and
/// optimizer behaviour must all stay consistent.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "analysis/LoopInfo.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

TEST(MixedNesting, DoInsideWhile) {
  const char *Src = R"(
program p
  real a(20)
  integer i, t, s
  t = 0
  s = 0
  while (t < 3) do
    do i = 1, 10
      s = s + int(a(i))
    end do
    t = t + 1
  end while
  print s
end program
)";
  CompileResult R = compileNaive(Src);
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.numLoops(), 2u);
  const Loop *Inner = LI.loopsInnermostFirst()[0];
  const Loop *Outer = LI.loopsInnermostFirst()[1];
  EXPECT_EQ(Inner->Depth, 2u);
  EXPECT_GE(Inner->DoLoopIndex, 0);
  EXPECT_EQ(Outer->DoLoopIndex, -1); // the while loop

  // LLS hoists the do-loop's checks into the do preheader, which sits in
  // the while body: one conditional check per while iteration.
  ExecResult Naive = interpret(*R.M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS do-in-while");
  EXPECT_LE(E.DynChecks, 3u); // one hoisted check per while iteration
  EXPECT_LT(E.DynChecks, Naive.DynChecks);
}

TEST(MixedNesting, WhileInsideDo) {
  const char *Src = R"(
program p
  real a(20)
  integer i, t, s
  s = 0
  do i = 1, 6
    t = 0
    while (t < i) do
      s = s + int(a(t + 1))
      t = t + 1
    end while
  end do
  print s
end program
)";
  // The while loop inside the do blocks loop-limit substitution for the
  // outer loop (nontermination safety), but behaviour must be preserved
  // under every scheme.
  expectAllSchemesPreserveBehavior(Src);
}

TEST(MixedNesting, TripleDoNest) {
  const char *Src = R"(
program p
  real a(30)
  integer i, j, k, s
  s = 0
  do i = 1, 4
    do j = 1, 4
      do k = 1, 4
        s = s + int(a(i + j + k))
      end do
    end do
  end do
  print s
end program
)";
  CompileResult R = compileNaive(Src);
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.numLoops(), 3u);
  EXPECT_EQ(LI.loopsInnermostFirst()[0]->Depth, 3u);
  EXPECT_EQ(LI.loopsInnermostFirst()[2]->Depth, 1u);

  // Substitution applies level by level: the check ends in the outermost
  // preheader (constant bounds fold the guard and the lower checks).
  ExecResult Naive = interpret(*R.M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS triple nest");
  EXPECT_LE(E.DynChecks, 2u);
}

TEST(MixedNesting, SiblingLoopsShareHoistedChecks) {
  // Two adjacent loops over the same array with the same bound variable:
  // each gets its own conditional check (no unsound sharing), and both
  // bodies are emptied of checks.
  const char *Src = R"(
program p
  real a(20)
  integer n, i, s
  n = 15
  s = 0
  do i = 1, n
    s = s + int(a(i))
  end do
  do i = 1, n
    s = s + int(a(i)) * 2
  end do
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS siblings");
  EXPECT_LE(E.DynChecks, 4u);
  EXPECT_GE(E.DynChecks, 2u);
}

} // namespace

#include "analysis/Dataflow.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

/// A straight-line chain entry -> b1 -> b2 (ret).
struct Chain {
  Function F{"f"};
  BlockID B0, B1, B2;
  Chain() {
    IRBuilder B(F);
    BasicBlock *A = B.createBlock("b0");
    BasicBlock *C = B.createBlock("b1");
    BasicBlock *D = B.createBlock("b2");
    B0 = A->id();
    B1 = C->id();
    B2 = D->id();
    B.setInsertBlock(A);
    B.emitJump(B1);
    B.setInsertBlock(C);
    B.emitJump(B2);
    B.setInsertBlock(D);
    B.emitRet();
    F.recomputePreds();
  }
};

DenseBitVector bits(size_t N, std::initializer_list<size_t> Set) {
  DenseBitVector V(N);
  for (size_t B : Set)
    V.set(B);
  return V;
}

TEST(Dataflow, ForwardGenKillPropagation) {
  Chain C;
  DataflowProblem P;
  P.Dir = DataflowProblem::Direction::Forward;
  P.MeetOp = DataflowProblem::Meet::Intersect;
  P.UniverseSize = 4;
  P.Gen = {bits(4, {0}), bits(4, {1}), bits(4, {})};
  P.Kill = {bits(4, {}), bits(4, {0}), bits(4, {})};

  DataflowResult R = solveDataflow(C.F, P);
  EXPECT_EQ(R.Out[C.B0], bits(4, {0}));
  // b1 kills 0 and gens 1.
  EXPECT_EQ(R.In[C.B1], bits(4, {0}));
  EXPECT_EQ(R.Out[C.B1], bits(4, {1}));
  EXPECT_EQ(R.In[C.B2], bits(4, {1}));
}

TEST(Dataflow, IntersectAtMerge) {
  // Diamond where only one branch generates fact 0; intersect drops it.
  Function F("f");
  IRBuilder B(F);
  SymbolID Cond = F.symbols().createScalar("c", ScalarType::Bool);
  BasicBlock *E = B.createBlock("e");
  BasicBlock *T = B.createBlock("t");
  BasicBlock *El = B.createBlock("el");
  BasicBlock *J = B.createBlock("j");
  B.setInsertBlock(E);
  B.emitBr(Value::sym(Cond), T->id(), El->id());
  B.setInsertBlock(T);
  B.emitJump(J->id());
  B.setInsertBlock(El);
  B.emitJump(J->id());
  B.setInsertBlock(J);
  B.emitRet();
  F.recomputePreds();

  DataflowProblem P;
  P.UniverseSize = 2;
  P.Gen = {bits(2, {1}), bits(2, {0}), bits(2, {}), bits(2, {})};
  P.Kill.assign(4, DenseBitVector(2));

  DataflowResult RI = solveDataflow(F, P);
  EXPECT_EQ(RI.In[J->id()], bits(2, {1})); // fact 0 only on the then path

  P.MeetOp = DataflowProblem::Meet::Union;
  DataflowResult RU = solveDataflow(F, P);
  EXPECT_EQ(RU.In[J->id()], bits(2, {0, 1}));
}

TEST(Dataflow, LoopReachesFixpoint) {
  // entry -> header <-> body; header -> exit. A fact genned in the body
  // is available at the header only via the back edge, so intersect with
  // the entry path must drop it; a fact genned before the loop survives.
  Function F("f");
  IRBuilder B(F);
  SymbolID Cond = F.symbols().createScalar("c", ScalarType::Bool);
  BasicBlock *E = B.createBlock("e");
  BasicBlock *H = B.createBlock("h");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *X = B.createBlock("x");
  B.setInsertBlock(E);
  B.emitJump(H->id());
  B.setInsertBlock(H);
  B.emitBr(Value::sym(Cond), Body->id(), X->id());
  B.setInsertBlock(Body);
  B.emitJump(H->id());
  B.setInsertBlock(X);
  B.emitRet();
  F.recomputePreds();

  DataflowProblem P;
  P.UniverseSize = 2;
  P.Gen.assign(4, DenseBitVector(2));
  P.Kill.assign(4, DenseBitVector(2));
  P.Gen[E->id()].set(0);
  P.Gen[Body->id()].set(1);

  DataflowResult R = solveDataflow(F, P);
  EXPECT_TRUE(R.In[H->id()].test(0));
  EXPECT_FALSE(R.In[H->id()].test(1));
  EXPECT_TRUE(R.In[X->id()].test(0));
  EXPECT_FALSE(R.In[X->id()].test(1));
}

TEST(Dataflow, BackwardAnticipation) {
  // Chain b0 -> b1 -> b2; fact 0 genned in b2, killed in b1: it is
  // anticipatable at b1's entry only if genned below the kill -- here the
  // kill stops it from reaching b0.
  Chain C;
  DataflowProblem P;
  P.Dir = DataflowProblem::Direction::Backward;
  P.UniverseSize = 2;
  P.Gen = {bits(2, {}), bits(2, {}), bits(2, {0, 1})};
  P.Kill = {bits(2, {}), bits(2, {0}), bits(2, {})};

  DataflowResult R = solveDataflow(C.F, P);
  EXPECT_TRUE(R.In[C.B2].test(0));
  EXPECT_TRUE(R.Out[C.B1].test(0));
  EXPECT_FALSE(R.In[C.B1].test(0)); // killed in b1
  EXPECT_TRUE(R.In[C.B1].test(1));  // transparent for fact 1
  EXPECT_TRUE(R.In[C.B0].test(1));
  EXPECT_FALSE(R.In[C.B0].test(0));
}

TEST(Dataflow, BackwardBoundaryAtExits) {
  // Nothing is anticipatable after a return: the boundary set is empty.
  Chain C;
  DataflowProblem P;
  P.Dir = DataflowProblem::Direction::Backward;
  P.UniverseSize = 1;
  P.Gen.assign(3, DenseBitVector(1));
  P.Kill.assign(3, DenseBitVector(1));
  DataflowResult R = solveDataflow(C.F, P);
  EXPECT_FALSE(R.Out[C.B2].test(0));
  EXPECT_FALSE(R.In[C.B0].test(0));
}

} // namespace

#include "analysis/LoopInfo.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

TEST(LoopInfo, SingleDoLoop) {
  CompileResult R = compileNaive(R"(
program p
  integer i, s
  s = 0
  do i = 1, 10
    s = s + i
  end do
  print s
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);

  ASSERT_EQ(LI.numLoops(), 1u);
  const Loop *L = LI.loopsInnermostFirst()[0];
  EXPECT_EQ(L->Depth, 1u);
  EXPECT_EQ(L->Parent, nullptr);
  EXPECT_NE(L->Preheader, InvalidBlock);
  ASSERT_GE(L->DoLoopIndex, 0);
  const DoLoopInfo &DL = F->doLoops()[L->DoLoopIndex];
  EXPECT_EQ(DL.Header, L->Header);
  EXPECT_EQ(DL.Step, 1);
  EXPECT_TRUE(L->contains(DL.BodyEntry));
  EXPECT_TRUE(L->contains(DL.Latch));
  EXPECT_FALSE(L->contains(DL.Preheader));
}

TEST(LoopInfo, NestingForest) {
  CompileResult R = compileNaive(R"(
program p
  integer i, j, k, s
  do i = 1, 3
    do j = 1, 3
      s = s + j
    end do
    do k = 1, 2
      s = s - k
    end do
  end do
  print s
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);

  ASSERT_EQ(LI.numLoops(), 3u);
  unsigned Outer = 0, Inner = 0;
  for (const Loop *L : LI.loopsInnermostFirst()) {
    if (L->Depth == 1)
      ++Outer;
    else if (L->Depth == 2)
      ++Inner;
  }
  EXPECT_EQ(Outer, 1u);
  EXPECT_EQ(Inner, 2u);

  // Innermost-first order: inner loops appear before their parent.
  const auto &Order = LI.loopsInnermostFirst();
  EXPECT_EQ(Order.back()->Depth, 1u);
  EXPECT_EQ(Order.back()->SubLoops.size(), 2u);
  for (const Loop *Sub : Order.back()->SubLoops)
    EXPECT_EQ(Sub->Parent, Order.back());
}

TEST(LoopInfo, WhileLoopHasNoDoMetadata) {
  CompileResult R = compileNaive(R"(
program p
  integer i
  i = 0
  while (i < 5) do
    i = i + 1
  end while
  print i
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.numLoops(), 1u);
  EXPECT_EQ(LI.loopsInnermostFirst()[0]->DoLoopIndex, -1);
  EXPECT_NE(LI.loopsInnermostFirst()[0]->Preheader, InvalidBlock);
}

TEST(LoopInfo, LoopForMapsBlocksToInnermost) {
  CompileResult R = compileNaive(R"(
program p
  integer i, j, s
  do i = 1, 3
    s = s + 1
    do j = 1, 3
      s = s + j
    end do
  end do
  print s
end program
)");
  Function *F = R.M->entry();
  F->recomputePreds();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  const Loop *InnerL = LI.loopsInnermostFirst()[0];
  ASSERT_EQ(InnerL->Depth, 2u);
  const DoLoopInfo &DL = F->doLoops()[InnerL->DoLoopIndex];
  EXPECT_EQ(LI.loopFor(DL.BodyEntry), InnerL);
  // The inner preheader belongs to the outer loop.
  EXPECT_EQ(LI.loopFor(DL.Preheader)->Depth, 1u);
}

TEST(LoopInfo, EntryGuardAndLastIteration) {
  CompileResult R = compileNaive(R"(
program p
  integer i, n, s
  n = 7
  do i = 2, n
    s = s + i
  end do
  do i = n, 1, -1
    s = s - i
  end do
  print s
end program
)");
  Function *F = R.M->entry();
  ASSERT_EQ(F->doLoops().size(), 2u);

  const DoLoopInfo &Up = F->doLoops()[0];
  EXPECT_EQ(Up.Step, 1);
  // Guard: 2 <= n  i.e.  (2 - n <= 0)  canonicalised to  (-n <= -2).
  CheckExpr G = Up.entryGuard();
  EXPECT_EQ(G.bound(), -2);
  // Last index value offset: n - 2.
  LinearExpr Last = Up.lastIterationIndexOffset();
  EXPECT_EQ(Last.constantPart(), -2);

  const DoLoopInfo &Down = F->doLoops()[1];
  EXPECT_EQ(Down.Step, -1);
  // Guard for a descending loop: n >= 1  i.e.  (1 - n <= 0).
  CheckExpr G2 = Down.entryGuard();
  EXPECT_EQ(G2.bound(), -1);
}

} // namespace

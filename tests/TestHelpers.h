//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the test suite: compile mini-Fortran snippets, run
/// them, and assert behaviour preservation between naive and optimized
/// builds (the paper's correctness criterion from section 3).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_TESTS_TESTHELPERS_H
#define NASCENT_TESTS_TESTHELPERS_H

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

namespace nascent {
namespace test {

/// Compiles \p Source, failing the test on front-end errors.
inline CompileResult compileOrDie(const std::string &Source,
                                  const PipelineOptions &Opts = {}) {
  CompileResult R = compileSource(Source, Opts);
  EXPECT_TRUE(R.Success) << R.Diags.render();
  return R;
}

/// Compiles with a given scheme (PRX checks, all implications). The
/// trap-safety auditor runs over the (original, optimized) pair and any
/// finding fails the test: every scheme/mode an optimizer test exercises
/// is also statically proved trap-safe.
inline CompileResult compileWithScheme(const std::string &Source,
                                       PlacementScheme Scheme,
                                       CheckSource Src = CheckSource::PRX,
                                       ImplicationMode Mode =
                                           ImplicationMode::All) {
  PipelineOptions PO;
  PO.Opt.Scheme = Scheme;
  PO.Opt.Implications = Mode;
  PO.Source = Src;
  PO.Audit = true;
  CompileResult R = compileOrDie(Source, PO);
  EXPECT_TRUE(R.Audit.clean())
      << placementSchemeName(Scheme) << ": " << R.Audit.render();
  return R;
}

/// Naive baseline compile (checks inserted, no optimization).
inline CompileResult compileNaive(const std::string &Source,
                                  CheckSource Src = CheckSource::PRX) {
  PipelineOptions PO;
  PO.Optimize = false;
  PO.Source = Src;
  return compileOrDie(Source, PO);
}

/// The paper's behaviour-preservation criterion:
///  (1) the optimized program traps iff the unoptimized one traps, and
///  (2) a violation is detected no later, so the optimized output must be
///      a prefix of the naive output (equal when no trap occurs).
inline void expectBehaviorPreserved(const ExecResult &Naive,
                                    const ExecResult &Opt,
                                    const std::string &Label) {
  ASSERT_NE(Naive.St, ExecResult::Status::HardFault)
      << Label << ": naive run hard-faulted: " << Naive.FaultMessage;
  ASSERT_NE(Opt.St, ExecResult::Status::HardFault)
      << Label << ": optimized run hard-faulted (optimizer bug): "
      << Opt.FaultMessage;
  EXPECT_EQ(Naive.St, Opt.St) << Label << ": trap behaviour changed; naive='"
                              << Naive.FaultMessage << "' opt='"
                              << Opt.FaultMessage << "'";
  if (Naive.St == ExecResult::Status::Ok) {
    EXPECT_EQ(Naive.Output, Opt.Output) << Label << ": output changed";
  } else {
    // Traps may fire earlier in the optimized program: the printed output
    // must be a prefix of the naive output.
    ASSERT_LE(Opt.Output.size(), Naive.Output.size()) << Label;
    for (size_t K = 0; K != Opt.Output.size(); ++K)
      EXPECT_EQ(Opt.Output[K], Naive.Output[K]) << Label << " line " << K;
  }
}

/// Compiles and runs under every scheme, asserting behaviour preservation
/// and returning the dynamic check count per scheme (index by scheme).
inline void expectAllSchemesPreserveBehavior(const std::string &Source,
                                             CheckSource Src =
                                                 CheckSource::PRX) {
  CompileResult Naive = compileNaive(Source, Src);
  ExecResult NaiveRun = interpret(*Naive.M);
  for (PlacementScheme Scheme :
       {PlacementScheme::NI, PlacementScheme::CS, PlacementScheme::LNI,
        PlacementScheme::SE, PlacementScheme::LI, PlacementScheme::LLS,
        PlacementScheme::ALL}) {
    for (ImplicationMode Mode :
         {ImplicationMode::All, ImplicationMode::CrossFamilyOnly,
          ImplicationMode::None}) {
      CompileResult Opt = compileWithScheme(Source, Scheme, Src, Mode);
      ExecResult OptRun = interpret(*Opt.M);
      std::string Label = std::string(placementSchemeName(Scheme)) + "/" +
                          (Src == CheckSource::PRX ? "PRX" : "INX") +
                          "/mode" + std::to_string(static_cast<int>(Mode));
      expectBehaviorPreserved(NaiveRun, OptRun, Label);
      // Optimization must never increase the dynamic check count beyond
      // the naive program... except SE/LNI/ALL, which the paper's own
      // Figure 5 shows can add checks on some paths.
      if (Scheme != PlacementScheme::SE && Scheme != PlacementScheme::LNI &&
          Scheme != PlacementScheme::ALL) {
        EXPECT_LE(OptRun.DynChecks, NaiveRun.DynChecks) << Label;
      }
    }
  }
}

} // namespace test
} // namespace nascent

#endif // NASCENT_TESTS_TESTHELPERS_H

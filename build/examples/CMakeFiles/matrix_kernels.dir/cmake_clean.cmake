file(REMOVE_RECURSE
  "CMakeFiles/matrix_kernels.dir/matrix_kernels.cpp.o"
  "CMakeFiles/matrix_kernels.dir/matrix_kernels.cpp.o.d"
  "matrix_kernels"
  "matrix_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for matrix_kernels.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/figure5.dir/figure5.cpp.o"
  "CMakeFiles/figure5.dir/figure5.cpp.o.d"
  "figure5"
  "figure5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mfc.cpp" "examples/CMakeFiles/mfc.dir/mfc.cpp.o" "gcc" "examples/CMakeFiles/mfc.dir/mfc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/nascent_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/nascent_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/cbackend/CMakeFiles/nascent_cbackend.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/nascent_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/nascent_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/checks/CMakeFiles/nascent_checks.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/nascent_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nascent_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nascent_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nascent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

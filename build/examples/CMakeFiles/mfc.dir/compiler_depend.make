# Empty compiler generated dependencies file for mfc.
# This may be replaced when dependencies are built.

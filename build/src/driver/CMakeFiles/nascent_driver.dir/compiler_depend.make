# Empty compiler generated dependencies file for nascent_driver.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nascent_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/nascent_driver.dir/Pipeline.cpp.o.d"
  "libnascent_driver.a"
  "libnascent_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

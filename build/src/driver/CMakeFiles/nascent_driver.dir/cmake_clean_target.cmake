file(REMOVE_RECURSE
  "libnascent_driver.a"
)

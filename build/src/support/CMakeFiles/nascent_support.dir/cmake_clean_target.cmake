file(REMOVE_RECURSE
  "libnascent_support.a"
)

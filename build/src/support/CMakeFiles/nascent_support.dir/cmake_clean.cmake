file(REMOVE_RECURSE
  "CMakeFiles/nascent_support.dir/DenseBitVector.cpp.o"
  "CMakeFiles/nascent_support.dir/DenseBitVector.cpp.o.d"
  "CMakeFiles/nascent_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/nascent_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/nascent_support.dir/StringUtils.cpp.o"
  "CMakeFiles/nascent_support.dir/StringUtils.cpp.o.d"
  "libnascent_support.a"
  "libnascent_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

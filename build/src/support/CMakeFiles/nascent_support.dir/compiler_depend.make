# Empty compiler generated dependencies file for nascent_support.
# This may be replaced when dependencies are built.

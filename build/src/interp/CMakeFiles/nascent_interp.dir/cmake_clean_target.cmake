file(REMOVE_RECURSE
  "libnascent_interp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/nascent_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/nascent_interp.dir/Interpreter.cpp.o.d"
  "libnascent_interp.a"
  "libnascent_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

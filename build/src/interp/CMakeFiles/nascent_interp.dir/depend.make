# Empty dependencies file for nascent_interp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nascent_checks.dir/CheckImplicationGraph.cpp.o"
  "CMakeFiles/nascent_checks.dir/CheckImplicationGraph.cpp.o.d"
  "CMakeFiles/nascent_checks.dir/CheckUniverse.cpp.o"
  "CMakeFiles/nascent_checks.dir/CheckUniverse.cpp.o.d"
  "CMakeFiles/nascent_checks.dir/INXSynthesis.cpp.o"
  "CMakeFiles/nascent_checks.dir/INXSynthesis.cpp.o.d"
  "libnascent_checks.a"
  "libnascent_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

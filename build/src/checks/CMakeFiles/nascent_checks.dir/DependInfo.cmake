
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checks/CheckImplicationGraph.cpp" "src/checks/CMakeFiles/nascent_checks.dir/CheckImplicationGraph.cpp.o" "gcc" "src/checks/CMakeFiles/nascent_checks.dir/CheckImplicationGraph.cpp.o.d"
  "/root/repo/src/checks/CheckUniverse.cpp" "src/checks/CMakeFiles/nascent_checks.dir/CheckUniverse.cpp.o" "gcc" "src/checks/CMakeFiles/nascent_checks.dir/CheckUniverse.cpp.o.d"
  "/root/repo/src/checks/INXSynthesis.cpp" "src/checks/CMakeFiles/nascent_checks.dir/INXSynthesis.cpp.o" "gcc" "src/checks/CMakeFiles/nascent_checks.dir/INXSynthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/nascent_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nascent_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nascent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libnascent_checks.a"
)

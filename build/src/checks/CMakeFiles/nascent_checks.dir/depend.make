# Empty dependencies file for nascent_checks.
# This may be replaced when dependencies are built.

# Empty dependencies file for nascent_ir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nascent_ir.dir/Function.cpp.o"
  "CMakeFiles/nascent_ir.dir/Function.cpp.o.d"
  "CMakeFiles/nascent_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/nascent_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/nascent_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/nascent_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/nascent_ir.dir/Instruction.cpp.o"
  "CMakeFiles/nascent_ir.dir/Instruction.cpp.o.d"
  "CMakeFiles/nascent_ir.dir/LinearExpr.cpp.o"
  "CMakeFiles/nascent_ir.dir/LinearExpr.cpp.o.d"
  "CMakeFiles/nascent_ir.dir/Symbol.cpp.o"
  "CMakeFiles/nascent_ir.dir/Symbol.cpp.o.d"
  "CMakeFiles/nascent_ir.dir/Verifier.cpp.o"
  "CMakeFiles/nascent_ir.dir/Verifier.cpp.o.d"
  "libnascent_ir.a"
  "libnascent_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnascent_ir.a"
)

file(REMOVE_RECURSE
  "libnascent_frontend.a"
)

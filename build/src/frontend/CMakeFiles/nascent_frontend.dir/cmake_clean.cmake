file(REMOVE_RECURSE
  "CMakeFiles/nascent_frontend.dir/Lowering.cpp.o"
  "CMakeFiles/nascent_frontend.dir/Lowering.cpp.o.d"
  "libnascent_frontend.a"
  "libnascent_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for nascent_frontend.
# This may be replaced when dependencies are built.

# Empty dependencies file for nascent_suite.
# This may be replaced when dependencies are built.

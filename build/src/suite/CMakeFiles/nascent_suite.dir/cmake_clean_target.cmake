file(REMOVE_RECURSE
  "libnascent_suite.a"
)

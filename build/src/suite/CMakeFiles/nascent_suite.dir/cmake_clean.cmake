file(REMOVE_RECURSE
  "CMakeFiles/nascent_suite.dir/ProgramsA.cpp.o"
  "CMakeFiles/nascent_suite.dir/ProgramsA.cpp.o.d"
  "CMakeFiles/nascent_suite.dir/ProgramsB.cpp.o"
  "CMakeFiles/nascent_suite.dir/ProgramsB.cpp.o.d"
  "CMakeFiles/nascent_suite.dir/Suite.cpp.o"
  "CMakeFiles/nascent_suite.dir/Suite.cpp.o.d"
  "libnascent_suite.a"
  "libnascent_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

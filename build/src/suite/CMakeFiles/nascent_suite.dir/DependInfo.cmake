
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suite/ProgramsA.cpp" "src/suite/CMakeFiles/nascent_suite.dir/ProgramsA.cpp.o" "gcc" "src/suite/CMakeFiles/nascent_suite.dir/ProgramsA.cpp.o.d"
  "/root/repo/src/suite/ProgramsB.cpp" "src/suite/CMakeFiles/nascent_suite.dir/ProgramsB.cpp.o" "gcc" "src/suite/CMakeFiles/nascent_suite.dir/ProgramsB.cpp.o.d"
  "/root/repo/src/suite/Suite.cpp" "src/suite/CMakeFiles/nascent_suite.dir/Suite.cpp.o" "gcc" "src/suite/CMakeFiles/nascent_suite.dir/Suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/nascent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

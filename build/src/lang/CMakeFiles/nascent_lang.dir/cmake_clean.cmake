file(REMOVE_RECURSE
  "CMakeFiles/nascent_lang.dir/AST.cpp.o"
  "CMakeFiles/nascent_lang.dir/AST.cpp.o.d"
  "CMakeFiles/nascent_lang.dir/Lexer.cpp.o"
  "CMakeFiles/nascent_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/nascent_lang.dir/Parser.cpp.o"
  "CMakeFiles/nascent_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/nascent_lang.dir/Sema.cpp.o"
  "CMakeFiles/nascent_lang.dir/Sema.cpp.o.d"
  "libnascent_lang.a"
  "libnascent_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnascent_lang.a"
)

# Empty compiler generated dependencies file for nascent_lang.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nascent_cbackend.dir/CEmitter.cpp.o"
  "CMakeFiles/nascent_cbackend.dir/CEmitter.cpp.o.d"
  "libnascent_cbackend.a"
  "libnascent_cbackend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_cbackend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnascent_cbackend.a"
)

# Empty compiler generated dependencies file for nascent_cbackend.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nascent_opt.dir/CheckContext.cpp.o"
  "CMakeFiles/nascent_opt.dir/CheckContext.cpp.o.d"
  "CMakeFiles/nascent_opt.dir/CheckStrengthening.cpp.o"
  "CMakeFiles/nascent_opt.dir/CheckStrengthening.cpp.o.d"
  "CMakeFiles/nascent_opt.dir/Elimination.cpp.o"
  "CMakeFiles/nascent_opt.dir/Elimination.cpp.o.d"
  "CMakeFiles/nascent_opt.dir/IntervalAnalysis.cpp.o"
  "CMakeFiles/nascent_opt.dir/IntervalAnalysis.cpp.o.d"
  "CMakeFiles/nascent_opt.dir/LazyCodeMotion.cpp.o"
  "CMakeFiles/nascent_opt.dir/LazyCodeMotion.cpp.o.d"
  "CMakeFiles/nascent_opt.dir/PreheaderInsertion.cpp.o"
  "CMakeFiles/nascent_opt.dir/PreheaderInsertion.cpp.o.d"
  "CMakeFiles/nascent_opt.dir/RangeCheckOptimizer.cpp.o"
  "CMakeFiles/nascent_opt.dir/RangeCheckOptimizer.cpp.o.d"
  "libnascent_opt.a"
  "libnascent_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

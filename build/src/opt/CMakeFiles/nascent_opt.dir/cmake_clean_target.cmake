file(REMOVE_RECURSE
  "libnascent_opt.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/CheckContext.cpp" "src/opt/CMakeFiles/nascent_opt.dir/CheckContext.cpp.o" "gcc" "src/opt/CMakeFiles/nascent_opt.dir/CheckContext.cpp.o.d"
  "/root/repo/src/opt/CheckStrengthening.cpp" "src/opt/CMakeFiles/nascent_opt.dir/CheckStrengthening.cpp.o" "gcc" "src/opt/CMakeFiles/nascent_opt.dir/CheckStrengthening.cpp.o.d"
  "/root/repo/src/opt/Elimination.cpp" "src/opt/CMakeFiles/nascent_opt.dir/Elimination.cpp.o" "gcc" "src/opt/CMakeFiles/nascent_opt.dir/Elimination.cpp.o.d"
  "/root/repo/src/opt/IntervalAnalysis.cpp" "src/opt/CMakeFiles/nascent_opt.dir/IntervalAnalysis.cpp.o" "gcc" "src/opt/CMakeFiles/nascent_opt.dir/IntervalAnalysis.cpp.o.d"
  "/root/repo/src/opt/LazyCodeMotion.cpp" "src/opt/CMakeFiles/nascent_opt.dir/LazyCodeMotion.cpp.o" "gcc" "src/opt/CMakeFiles/nascent_opt.dir/LazyCodeMotion.cpp.o.d"
  "/root/repo/src/opt/PreheaderInsertion.cpp" "src/opt/CMakeFiles/nascent_opt.dir/PreheaderInsertion.cpp.o" "gcc" "src/opt/CMakeFiles/nascent_opt.dir/PreheaderInsertion.cpp.o.d"
  "/root/repo/src/opt/RangeCheckOptimizer.cpp" "src/opt/CMakeFiles/nascent_opt.dir/RangeCheckOptimizer.cpp.o" "gcc" "src/opt/CMakeFiles/nascent_opt.dir/RangeCheckOptimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checks/CMakeFiles/nascent_checks.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nascent_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nascent_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nascent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

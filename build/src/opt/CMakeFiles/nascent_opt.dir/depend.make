# Empty dependencies file for nascent_opt.
# This may be replaced when dependencies are built.

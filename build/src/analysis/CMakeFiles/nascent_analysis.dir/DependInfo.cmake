
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFGUtils.cpp" "src/analysis/CMakeFiles/nascent_analysis.dir/CFGUtils.cpp.o" "gcc" "src/analysis/CMakeFiles/nascent_analysis.dir/CFGUtils.cpp.o.d"
  "/root/repo/src/analysis/Dataflow.cpp" "src/analysis/CMakeFiles/nascent_analysis.dir/Dataflow.cpp.o" "gcc" "src/analysis/CMakeFiles/nascent_analysis.dir/Dataflow.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/nascent_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/nascent_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/InductionVariables.cpp" "src/analysis/CMakeFiles/nascent_analysis.dir/InductionVariables.cpp.o" "gcc" "src/analysis/CMakeFiles/nascent_analysis.dir/InductionVariables.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/analysis/CMakeFiles/nascent_analysis.dir/LoopInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/nascent_analysis.dir/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/SSA.cpp" "src/analysis/CMakeFiles/nascent_analysis.dir/SSA.cpp.o" "gcc" "src/analysis/CMakeFiles/nascent_analysis.dir/SSA.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/nascent_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nascent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

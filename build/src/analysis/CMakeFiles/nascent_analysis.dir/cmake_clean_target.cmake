file(REMOVE_RECURSE
  "libnascent_analysis.a"
)

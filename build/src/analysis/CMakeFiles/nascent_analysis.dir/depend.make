# Empty dependencies file for nascent_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nascent_analysis.dir/CFGUtils.cpp.o"
  "CMakeFiles/nascent_analysis.dir/CFGUtils.cpp.o.d"
  "CMakeFiles/nascent_analysis.dir/Dataflow.cpp.o"
  "CMakeFiles/nascent_analysis.dir/Dataflow.cpp.o.d"
  "CMakeFiles/nascent_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/nascent_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/nascent_analysis.dir/InductionVariables.cpp.o"
  "CMakeFiles/nascent_analysis.dir/InductionVariables.cpp.o.d"
  "CMakeFiles/nascent_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/nascent_analysis.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/nascent_analysis.dir/SSA.cpp.o"
  "CMakeFiles/nascent_analysis.dir/SSA.cpp.o.d"
  "libnascent_analysis.a"
  "libnascent_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascent_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/DataflowTest.cpp" "tests/CMakeFiles/nascent_tests.dir/analysis/DataflowTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/analysis/DataflowTest.cpp.o.d"
  "/root/repo/tests/analysis/DominatorsTest.cpp" "tests/CMakeFiles/nascent_tests.dir/analysis/DominatorsTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/analysis/DominatorsTest.cpp.o.d"
  "/root/repo/tests/analysis/InductionVariablesTest.cpp" "tests/CMakeFiles/nascent_tests.dir/analysis/InductionVariablesTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/analysis/InductionVariablesTest.cpp.o.d"
  "/root/repo/tests/analysis/LoopInfoTest.cpp" "tests/CMakeFiles/nascent_tests.dir/analysis/LoopInfoTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/analysis/LoopInfoTest.cpp.o.d"
  "/root/repo/tests/analysis/MixedNestingTest.cpp" "tests/CMakeFiles/nascent_tests.dir/analysis/MixedNestingTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/analysis/MixedNestingTest.cpp.o.d"
  "/root/repo/tests/analysis/SSATest.cpp" "tests/CMakeFiles/nascent_tests.dir/analysis/SSATest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/analysis/SSATest.cpp.o.d"
  "/root/repo/tests/cbackend/CEmitterTest.cpp" "tests/CMakeFiles/nascent_tests.dir/cbackend/CEmitterTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/cbackend/CEmitterTest.cpp.o.d"
  "/root/repo/tests/checks/CheckImplicationGraphTest.cpp" "tests/CMakeFiles/nascent_tests.dir/checks/CheckImplicationGraphTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/checks/CheckImplicationGraphTest.cpp.o.d"
  "/root/repo/tests/checks/CheckUniverseTest.cpp" "tests/CMakeFiles/nascent_tests.dir/checks/CheckUniverseTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/checks/CheckUniverseTest.cpp.o.d"
  "/root/repo/tests/checks/INXSynthesisTest.cpp" "tests/CMakeFiles/nascent_tests.dir/checks/INXSynthesisTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/checks/INXSynthesisTest.cpp.o.d"
  "/root/repo/tests/frontend/LoweringTest.cpp" "tests/CMakeFiles/nascent_tests.dir/frontend/LoweringTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/frontend/LoweringTest.cpp.o.d"
  "/root/repo/tests/integration/RandomProgramTest.cpp" "tests/CMakeFiles/nascent_tests.dir/integration/RandomProgramTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/integration/RandomProgramTest.cpp.o.d"
  "/root/repo/tests/integration/SuiteBehaviorTest.cpp" "tests/CMakeFiles/nascent_tests.dir/integration/SuiteBehaviorTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/integration/SuiteBehaviorTest.cpp.o.d"
  "/root/repo/tests/interp/InterpreterTest.cpp" "tests/CMakeFiles/nascent_tests.dir/interp/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/interp/InterpreterTest.cpp.o.d"
  "/root/repo/tests/ir/IRStructureTest.cpp" "tests/CMakeFiles/nascent_tests.dir/ir/IRStructureTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/ir/IRStructureTest.cpp.o.d"
  "/root/repo/tests/ir/LinearExprTest.cpp" "tests/CMakeFiles/nascent_tests.dir/ir/LinearExprTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/ir/LinearExprTest.cpp.o.d"
  "/root/repo/tests/lang/LexerTest.cpp" "tests/CMakeFiles/nascent_tests.dir/lang/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/lang/LexerTest.cpp.o.d"
  "/root/repo/tests/lang/ParserFuzzTest.cpp" "tests/CMakeFiles/nascent_tests.dir/lang/ParserFuzzTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/lang/ParserFuzzTest.cpp.o.d"
  "/root/repo/tests/lang/ParserTest.cpp" "tests/CMakeFiles/nascent_tests.dir/lang/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/lang/ParserTest.cpp.o.d"
  "/root/repo/tests/lang/SemaTest.cpp" "tests/CMakeFiles/nascent_tests.dir/lang/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/lang/SemaTest.cpp.o.d"
  "/root/repo/tests/opt/CheckContextTest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/CheckContextTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/CheckContextTest.cpp.o.d"
  "/root/repo/tests/opt/DirectAPITest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/DirectAPITest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/DirectAPITest.cpp.o.d"
  "/root/repo/tests/opt/EliminationTest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/EliminationTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/EliminationTest.cpp.o.d"
  "/root/repo/tests/opt/IntervalAnalysisTest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/IntervalAnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/IntervalAnalysisTest.cpp.o.d"
  "/root/repo/tests/opt/LazyCodeMotionTest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/LazyCodeMotionTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/LazyCodeMotionTest.cpp.o.d"
  "/root/repo/tests/opt/MarksteinTest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/MarksteinTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/MarksteinTest.cpp.o.d"
  "/root/repo/tests/opt/OptimizerTest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/OptimizerTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/OptimizerTest.cpp.o.d"
  "/root/repo/tests/opt/PreheaderInsertionTest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/PreheaderInsertionTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/PreheaderInsertionTest.cpp.o.d"
  "/root/repo/tests/opt/StrengtheningTest.cpp" "tests/CMakeFiles/nascent_tests.dir/opt/StrengtheningTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/opt/StrengtheningTest.cpp.o.d"
  "/root/repo/tests/support/DenseBitVectorTest.cpp" "tests/CMakeFiles/nascent_tests.dir/support/DenseBitVectorTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/support/DenseBitVectorTest.cpp.o.d"
  "/root/repo/tests/support/StringUtilsTest.cpp" "tests/CMakeFiles/nascent_tests.dir/support/StringUtilsTest.cpp.o" "gcc" "tests/CMakeFiles/nascent_tests.dir/support/StringUtilsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cbackend/CMakeFiles/nascent_cbackend.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/nascent_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/nascent_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/nascent_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/nascent_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/checks/CMakeFiles/nascent_checks.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/nascent_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/nascent_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nascent_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nascent_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nascent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for nascent_tests.
# This may be replaced when dependencies are built.

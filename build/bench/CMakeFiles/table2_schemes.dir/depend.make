# Empty dependencies file for table2_schemes.
# This may be replaced when dependencies are built.

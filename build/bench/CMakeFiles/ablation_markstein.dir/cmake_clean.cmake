file(REMOVE_RECURSE
  "CMakeFiles/ablation_markstein.dir/ablation_markstein.cpp.o"
  "CMakeFiles/ablation_markstein.dir/ablation_markstein.cpp.o.d"
  "ablation_markstein"
  "ablation_markstein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_markstein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_markstein.
# This may be replaced when dependencies are built.

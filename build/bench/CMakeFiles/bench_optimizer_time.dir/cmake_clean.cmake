file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_time.dir/bench_optimizer_time.cpp.o"
  "CMakeFiles/bench_optimizer_time.dir/bench_optimizer_time.cpp.o.d"
  "bench_optimizer_time"
  "bench_optimizer_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

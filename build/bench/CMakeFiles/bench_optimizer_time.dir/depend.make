# Empty dependencies file for bench_optimizer_time.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_implication.dir/table3_implication.cpp.o"
  "CMakeFiles/table3_implication.dir/table3_implication.cpp.o.d"
  "table3_implication"
  "table3_implication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_implication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

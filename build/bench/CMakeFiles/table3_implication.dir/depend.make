# Empty dependencies file for table3_implication.
# This may be replaced when dependencies are built.

//===----------------------------------------------------------------------===//
///
/// \file
/// json_check: runs a command, captures its stdout, and verifies the
/// output is a single well-formed bench document — not just parsable
/// JSON, but a known schemaVersion with every required envelope field
/// (harness, env, config) and a plausible runs/googleBenchmark payload
/// (obs/BenchSchema.h). The bench-smoke CTest entries use it to validate
/// every harness's --json mode:
///
///   json_check ./table2_schemes --json --tiny
///
/// A document carrying a "provenance" member is instead validated as a
/// check-lifecycle provenance envelope (obs/Provenance.h): every event
/// well-formed, every witness-tag reference resolved, every lifecycle
/// terminal. The provenance-smoke entries drive mfc -provenance-json
/// through this path.
///
/// A document carrying a "profileVersion" member is validated as an
/// execution-profile document (obs/Profile.h): either a single "profile"
/// object whose advertised totals reconcile with the per-function
/// structure, or a profdiff "programs" comparison report. The
/// profile-smoke entries drive mfc -profile-json and profdiff --json
/// through this path.
///
/// Additionally, a document carrying a "cacheStats" member (mfc -cache
/// -stats-json, docs/caching.md) has that block checked for shape: both
/// tiers present with non-negative hit/miss counters, and the byte gauge
/// within the advertised budget. The cache-smoke entries rely on this.
///
/// Exits 0 on a valid document, 1 on a parse/validation failure or a
/// failing command.
///
//===----------------------------------------------------------------------===//

#include "obs/BenchSchema.h"
#include "obs/Json.h"
#include "obs/Profile.h"
#include "obs/Provenance.h"

#include <cstdio>
#include <string>

using namespace nascent;

namespace {

/// Validates the "cacheStats" block emitted by ArtifactCache::
/// writeStatsJson: {"frontend":{"hits","misses"},"analysis":{...},
/// "bytes","maxBytes","evictions"}, every counter a non-negative number
/// and the live byte gauge within the advertised budget.
bool validateCacheStats(const obs::JsonValue &CS, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = "cacheStats: " + Msg;
    return false;
  };
  if (!CS.isObject())
    return Fail("not an object");
  for (const char *Tier : {"frontend", "analysis"}) {
    const obs::JsonValue *T = CS.get(Tier);
    if (!T || !T->isObject())
      return Fail(std::string(Tier) + " tier missing");
    for (const char *Counter : {"hits", "misses"}) {
      const obs::JsonValue *C = T->get(Counter);
      if (!C || !C->isNumber() || C->Number < 0)
        return Fail(std::string(Tier) + "." + Counter +
                    " missing or negative");
    }
  }
  for (const char *Field : {"bytes", "maxBytes", "evictions"}) {
    const obs::JsonValue *F = CS.get(Field);
    if (!F || !F->isNumber() || F->Number < 0)
      return Fail(std::string(Field) + " missing or negative");
  }
  if (CS.get("bytes")->Number > CS.get("maxBytes")->Number)
    return Fail("bytes exceeds maxBytes");
  return true;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_check COMMAND [ARGS...]\n");
    return 2;
  }

  std::string Cmd;
  for (int I = 1; I < argc; ++I) {
    if (I > 1)
      Cmd += ' ';
    Cmd += argv[I];
  }

  FILE *P = popen(Cmd.c_str(), "r");
  if (!P) {
    std::fprintf(stderr, "json_check: cannot run '%s'\n", Cmd.c_str());
    return 1;
  }
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Status = pclose(P);
  if (Status != 0) {
    std::fprintf(stderr, "json_check: '%s' exited with status %d\n",
                 Cmd.c_str(), Status);
    return 1;
  }

  obs::JsonValue V;
  std::string Err;
  if (!obs::parseJson(Out, V, &Err)) {
    std::fprintf(stderr, "json_check: '%s' output is not valid JSON: %s\n",
                 Cmd.c_str(), Err.c_str());
    return 1;
  }
  bool Ok;
  if (V.get("profileVersion"))
    Ok = obs::validateProfileDocument(V, &Err);
  else if (V.get("provenance"))
    Ok = obs::validateProvenanceDocument(V, &Err);
  else
    Ok = obs::validateBenchDocument(V, &Err);
  if (Ok && V.get("cacheStats"))
    Ok = validateCacheStats(*V.get("cacheStats"), &Err);
  if (!Ok) {
    std::fprintf(stderr,
                 "json_check: '%s' output fails schema validation: %s\n",
                 Cmd.c_str(), Err.c_str());
    return 1;
  }
  std::printf("json_check: %s: ok (%zu bytes, schemaVersion %lld)\n",
              Cmd.c_str(), Out.size(),
              static_cast<long long>(obs::BenchSchemaVersion));
  return 0;
}

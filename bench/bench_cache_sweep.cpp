//===----------------------------------------------------------------------===//
///
/// \file
/// bench_cache_sweep: measures what the content-addressed artifact cache
/// buys on the canonical batch workload — the full (program, scheme,
/// implication mode) sweep through BatchCompiler — by timing the whole
/// batch uncached and cached (docs/caching.md). Two runs land in the
/// JSON document, discriminated by "config": "uncached" / "cached", so
/// the committed BENCH_bench_cache_sweep.json baseline records the
/// speedup and benchdiff gates both configurations:
///
///  * the work-proxy counters of both configurations are identical by
///    construction (the cache's byte-identity contract), so any drift is
///    a real behaviour change, and
///  * the cached configuration's wall/CPU medians must stay inside their
///    noise envelope — a cache regression (missed hits, key churn) shows
///    up as its timing walking back toward the uncached run's.
///
///   bench_cache_sweep [--json] [--tiny] [--reps N] [--warmup N] [--jobs N]
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cache/ArtifactCache.h"
#include "driver/BatchCompiler.h"
#include "obs/Sampling.h"
#include "obs/Trace.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <memory>

using namespace nascent;
using namespace nascent::bench;

namespace {

/// One timed pass over the whole sweep batch.
struct BatchResult {
  double WallSeconds = 0;
  double CpuSeconds = 0;
  uint64_t StaticChecks = 0;
  obs::StatSnapshot::FlatMap Work;
};

std::vector<BatchJob> makeBatch(const std::vector<SuiteProgram> &Suite,
                                cache::ArtifactCache *Cache) {
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const ImplicationMode Modes[] = {ImplicationMode::All,
                                   ImplicationMode::CrossFamilyOnly,
                                   ImplicationMode::None};
  std::vector<BatchJob> Batch;
  for (const SuiteProgram &P : Suite) {
    // One shared buffer per program across its 27 cells, like sweep.
    auto Source = std::make_shared<const std::string>(P.Source);
    for (PlacementScheme Scheme : Schemes) {
      for (ImplicationMode Mode : Modes) {
        PipelineOptions PO;
        PO.Opt.Scheme = Scheme;
        PO.Opt.Implications = Mode;
        PO.Cache.Enabled = Cache != nullptr;
        PO.Cache.Cache = Cache;
        Batch.push_back({Source, PO});
      }
    }
  }
  return Batch;
}

BatchResult runBatch(const std::vector<SuiteProgram> &Suite, bool Cached,
                     unsigned Jobs) {
  using Clock = std::chrono::steady_clock;
  // A fresh cache per pass: the measurement is "one cold sweep with
  // intra-sweep sharing", not an ever-warmer process-global cache.
  std::unique_ptr<cache::ArtifactCache> Cache;
  if (Cached)
    Cache = std::make_unique<cache::ArtifactCache>();
  std::vector<BatchJob> Batch = makeBatch(Suite, Cache.get());

  BatchResult R;
  obs::StatSnapshot Before = obs::StatRegistry::global().snapshot();
  auto T0 = Clock::now();
  double Cpu0 = obs::processCpuSeconds();
  std::vector<BatchJobResult> Results = BatchCompiler(Jobs).run(Batch);
  R.CpuSeconds = obs::processCpuSeconds() - Cpu0;
  R.WallSeconds = std::chrono::duration<double>(Clock::now() - T0).count();
  R.Work = obs::StatRegistry::global().snapshot().deltaFrom(Before);
  for (const BatchJobResult &BR : Results) {
    if (!BR.Result.Success) {
      std::fprintf(stderr, "bench_cache_sweep: compile failed:\n%s\n",
                   BR.Result.Diags.render().c_str());
      std::exit(1);
    }
    R.StaticChecks += countStatic(*BR.Result.M).Checks;
  }
  return R;
}

/// Measures one configuration --reps times (after --warmup) and writes
/// its run object. Returns the wall-clock median for the speedup line.
double measureAndWrite(obs::JsonWriter *W, const std::vector<SuiteProgram> &S,
                       bool Cached, const BenchFlags &Flags) {
  for (unsigned I = 0; I != Flags.Warmup; ++I)
    runBatch(S, Cached, Flags.Jobs);
  unsigned Reps = Flags.Reps ? Flags.Reps : 1;
  std::vector<double> Wall, Cpu;
  BatchResult Last;
  for (unsigned I = 0; I != Reps; ++I) {
    Last = runBatch(S, Cached, Flags.Jobs);
    Wall.push_back(Last.WallSeconds);
    Cpu.push_back(Last.CpuSeconds);
  }
  obs::SampleStats WallStats = obs::summarizeSamples(Wall);
  obs::SampleStats CpuStats = obs::summarizeSamples(Cpu);

  if (W) {
    W->beginObject();
    W->kv("config", Cached ? "cached" : "uncached");
    W->key("run");
    W->beginObject();
    W->kv("program", "suite-sweep");
    W->kv("dynChecks", uint64_t(0));
    W->kv("dynInstrs", uint64_t(0));
    W->kv("staticChecks", Last.StaticChecks);
    W->key("stats");
    W->beginObject();
    W->endObject();
    W->key("timing");
    W->beginObject();
    W->key("totalWall");
    WallStats.writeJson(*W);
    W->key("totalCpu");
    CpuStats.writeJson(*W);
    W->endObject();
    W->key("work");
    W->beginObject();
    for (const auto &[Name, V] : Last.Work)
      W->kv(Name, V);
    W->endObject();
    W->endObject();
    W->endObject();
  } else {
    std::printf("%-9s wall %.3fs (median of %u), cpu %.3fs, "
                "static checks %llu\n",
                Cached ? "cached" : "uncached", WallStats.Median, Reps,
                CpuStats.Median,
                static_cast<unsigned long long>(Last.StaticChecks));
  }
  return WallStats.Median;
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags;
  if (!parseBenchFlags(argc, argv, Flags))
    return 2;
  std::vector<SuiteProgram> Suite = benchSuite(Flags);

  obs::JsonWriter W;
  obs::JsonWriter *WP = Flags.Json ? &W : nullptr;
  if (Flags.Json) {
    beginBenchDocument(W, "bench_cache_sweep", Flags);
    W.key("runs");
    W.beginArray();
  }
  double Uncached = measureAndWrite(WP, Suite, /*Cached=*/false, Flags);
  double Cached = measureAndWrite(WP, Suite, /*Cached=*/true, Flags);
  if (Flags.Json) {
    W.endArray();
    W.kv("cacheSpeedup", Cached > 0 ? Uncached / Cached : 0.0);
    endBenchDocument(W);
    std::printf("%s\n", W.str().c_str());
  } else {
    std::printf("speedup: %.2fx\n", Cached > 0 ? Uncached / Cached : 0.0);
  }
  return 0;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 2 of the paper: percentage of dynamic range checks
/// eliminated by the seven check placement schemes (NI, CS, LNI, SE, LI,
/// LLS, ALL) on both kinds of checks (PRX and INX), plus the compile-time
/// cost columns ("Range" = optimizer CPU seconds, "Total" = whole
/// pipeline seconds, summed over the ten programs).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace nascent;
using namespace nascent::bench;

int main(int argc, char **argv) {
  BenchFlags Flags;
  if (!parseBenchFlags(argc, argv, Flags))
    return 2;
  std::vector<SuiteProgram> Suite = benchSuite(Flags);

  const PlacementScheme Schemes[] = {
      PlacementScheme::NI, PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE, PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL};

  obs::JsonWriter W;
  if (Flags.Json) {
    beginBenchDocument(W, "table2_schemes", Flags);
    W.key("runs");
    W.beginArray();
  } else {
    std::printf("Table 2: percentage of checks eliminated by the placement "
                "schemes, and compilation time\n\n");
  }

  // Measure the whole (source, scheme, program) matrix up front — fanned
  // across --jobs workers — then emit rows from the ordered results.
  const CheckSource Sources[] = {CheckSource::PRX, CheckSource::INX};
  std::vector<SweepConfig> Configs;
  for (CheckSource Source : Sources)
    for (PlacementScheme Scheme : Schemes)
      for (const SuiteProgram &P : Suite)
        Configs.push_back({P, Source, Scheme, ImplicationMode::All});
  std::vector<MeasuredRun> Measured = sweepMeasure(Configs, Flags);

  size_t Next = 0;
  for (CheckSource Source : Sources) {
    std::vector<std::string> Header = {"scheme"};
    for (const SuiteProgram &P : Suite)
      Header.push_back(P.Name);
    Header.push_back("Range(s)");
    Header.push_back("Total(s)");
    TextTable T(std::move(Header));

    for (PlacementScheme Scheme : Schemes) {
      std::vector<std::string> Row = {placementSchemeName(Scheme)};
      double RangeSecs = 0, TotalSecs = 0;
      for (const SuiteProgram &P : Suite) {
        const RunResult &Naive = naiveBaseline(P, Source);
        const MeasuredRun &Opt = Measured[Next++];
        if (Flags.Json) {
          W.beginObject();
          W.kv("source", checkSourceName(Source));
          W.kv("scheme", placementSchemeName(Scheme));
          W.key("run");
          writeRunJson(W, P.Name, Naive, Opt);
          W.endObject();
        }
        Row.push_back(
            formatString("%.2f", percentEliminated(Naive, Opt.Run)));
        RangeSecs += Opt.Run.OptimizeWallSeconds;
        TotalSecs += Opt.Run.TotalWallSeconds;
      }
      Row.push_back(formatString("%.3f", RangeSecs));
      Row.push_back(formatString("%.3f", TotalSecs));
      T.addRow(std::move(Row));
    }
    if (!Flags.Json) {
      std::printf("%s-Checks:\n", checkSourceName(Source));
      std::printf("%s\n", T.render().c_str());
    }
  }

  if (Flags.Json) {
    W.endArray();
    endBenchDocument(W);
    std::printf("%s\n", W.str().c_str());
    return 0;
  }

  std::printf(
      "Shape expectations from the paper: NI/CS/LNI/SE close together; LI\n"
      ">= NI (equal for PRX in the paper); LLS eliminates the vast majority\n"
      "of checks; ALL adds almost nothing over LLS; NI is the cheapest and\n"
      "the PRE-based schemes the most expensive to run.\n");
  return 0;
}

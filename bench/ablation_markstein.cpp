//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison the paper proposes as future work (section 5): the
/// restricted preheader-insertion algorithm of Markstein, Cocke, and
/// Markstein (1982) against the paper's LI and LLS schemes. MCM hoists
/// only simple checks found in articulation blocks of loop bodies; the
/// table shows how much of LLS's benefit that restriction forfeits. The
/// AI row is the second extension: compile-time-only elimination by
/// value-range analysis, standing in for the abstract-interpretation
/// school of the paper's section 5.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace nascent;
using namespace nascent::bench;

int main(int argc, char **argv) {
  BenchFlags Flags;
  if (!parseBenchFlags(argc, argv, Flags))
    return 2;
  std::vector<SuiteProgram> Suite = benchSuite(Flags);

  obs::JsonWriter W;
  if (Flags.Json) {
    beginBenchDocument(W, "ablation_markstein", Flags);
    W.key("runs");
    W.beginArray();
  } else {
    std::printf("Ablation: Markstein-Cocke-Markstein restricted hoisting vs "
                "the paper's schemes\n(percentage of dynamic checks "
                "eliminated, PRX checks)\n\n");
  }

  std::vector<std::string> Header = {"scheme"};
  for (const SuiteProgram &P : Suite)
    Header.push_back(P.Name);
  TextTable T(std::move(Header));

  const PlacementScheme SchemeList[] = {
      PlacementScheme::AI, PlacementScheme::NI, PlacementScheme::MCM,
      PlacementScheme::LI, PlacementScheme::LLS};
  std::vector<SweepConfig> Sweep;
  for (PlacementScheme S : SchemeList)
    for (const SuiteProgram &P : Suite)
      Sweep.push_back({P, CheckSource::PRX, S, ImplicationMode::All});
  std::vector<MeasuredRun> Measured = sweepMeasure(Sweep, Flags);

  size_t Next = 0;
  for (PlacementScheme S : SchemeList) {
    std::vector<std::string> Row = {placementSchemeName(S)};
    for (const SuiteProgram &P : Suite) {
      const RunResult &Naive = naiveBaseline(P, CheckSource::PRX);
      const MeasuredRun &Opt = Measured[Next++];
      if (Flags.Json) {
        W.beginObject();
        W.kv("scheme", placementSchemeName(S));
        W.key("run");
        writeRunJson(W, P.Name, Naive, Opt);
        W.endObject();
      }
      Row.push_back(formatString("%.2f", percentEliminated(Naive, Opt.Run)));
    }
    T.addRow(std::move(Row));
  }

  if (Flags.Json) {
    W.endArray();
    endBenchDocument(W);
    std::printf("%s\n", W.str().c_str());
    return 0;
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("MCM's articulation-block and simple-expression restrictions "
              "forfeit part of LLS's\nbenefit; the paper conjectured the "
              "difference would show whether the added\nsophistication of "
              "data-flow-based hoisting is cost effective.\n");
  return 0;
}

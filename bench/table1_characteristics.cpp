//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1 of the paper: program characteristics of the
/// benchmark suite under naive range checking — lines, subroutines,
/// loops, static and dynamic instruction counts, static and dynamic
/// range-check counts, and the check/instruction ratios that motivate
/// optimization (the paper found 22-66 % dynamic ratios).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace nascent;
using namespace nascent::bench;

int main() {
  std::printf("Table 1: program characteristics of benchmark programs\n");
  std::printf("(naive range checking, no optimization; PRX lowering)\n\n");

  TextTable T({"suite", "program", "lines", "subr", "loops", "instr-static",
               "instr-dynamic", "checks-static", "checks-dynamic",
               "chk/ins st %", "chk/ins dy %"});

  uint64_t MinRatio = ~uint64_t(0), MaxRatio = 0;
  for (const SuiteProgram &P : benchmarkSuite()) {
    const RunResult &R = naiveBaseline(P, CheckSource::PRX);
    double StRatio =
        100.0 * double(R.Static.Checks) / double(R.Static.Instrs);
    double DyRatio =
        100.0 * double(R.Exec.DynChecks) / double(R.Exec.DynInstrs);
    T.addRow({P.Origin, P.Name, std::to_string(countSourceLines(P.Source)),
              std::to_string(R.Static.Units), std::to_string(R.Static.Loops),
              std::to_string(R.Static.Instrs),
              std::to_string(R.Exec.DynInstrs),
              std::to_string(R.Static.Checks),
              std::to_string(R.Exec.DynChecks),
              formatString("%.0f", StRatio), formatString("%.0f", DyRatio)});
    uint64_t Rat = static_cast<uint64_t>(DyRatio);
    MinRatio = std::min(MinRatio, Rat);
    MaxRatio = std::max(MaxRatio, Rat);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Dynamic check/instruction ratio ranges from %llu%% to %llu%%; "
              "with a check costing at\n"
              "least two instructions, naive checking overhead is roughly "
              "%llu%%-%llu%% (paper: 44%%-132%%).\n",
              (unsigned long long)MinRatio, (unsigned long long)MaxRatio,
              (unsigned long long)(2 * MinRatio),
              (unsigned long long)(2 * MaxRatio));
  return 0;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1 of the paper: program characteristics of the
/// benchmark suite under naive range checking — lines, subroutines,
/// loops, static and dynamic instruction counts, static and dynamic
/// range-check counts, and the check/instruction ratios that motivate
/// optimization (the paper found 22-66 % dynamic ratios).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace nascent;
using namespace nascent::bench;

int main(int argc, char **argv) {
  BenchFlags Flags;
  if (!parseBenchFlags(argc, argv, Flags))
    return 2;
  std::vector<SuiteProgram> Suite = benchSuite(Flags);

  obs::JsonWriter W;
  if (Flags.Json) {
    beginBenchDocument(W, "table1_characteristics", Flags);
    W.key("runs");
    W.beginArray();
  } else {
    std::printf("Table 1: program characteristics of benchmark programs\n");
    std::printf("(naive range checking, no optimization; PRX lowering)\n\n");
  }

  TextTable T({"suite", "program", "lines", "subr", "loops", "instr-static",
               "instr-dynamic", "checks-static", "checks-dynamic",
               "chk/ins st %", "chk/ins dy %"});

  uint64_t MinRatio = ~uint64_t(0), MaxRatio = 0;
  for (const SuiteProgram &P : Suite) {
    const RunResult &R = naiveBaseline(P, CheckSource::PRX);
    if (Flags.Json) {
      MeasuredRun Naive =
          measureProgram(P, CheckSource::PRX, /*Optimize=*/false,
                         PlacementScheme::NI, ImplicationMode::All, Flags);
      W.beginObject();
      W.kv("suite", P.Origin);
      W.kv("lines", static_cast<uint64_t>(countSourceLines(P.Source)));
      W.kv("subroutines", Naive.Run.Static.Units);
      W.kv("loops", Naive.Run.Static.Loops);
      W.kv("staticInstrs", Naive.Run.Static.Instrs);
      W.key("run");
      writeRunJson(W, P.Name, Naive.Run, Naive);
      W.endObject();
    }
    double StRatio =
        100.0 * double(R.Static.Checks) / double(R.Static.Instrs);
    double DyRatio =
        100.0 * double(R.Exec.DynChecks) / double(R.Exec.DynInstrs);
    T.addRow({P.Origin, P.Name, std::to_string(countSourceLines(P.Source)),
              std::to_string(R.Static.Units), std::to_string(R.Static.Loops),
              std::to_string(R.Static.Instrs),
              std::to_string(R.Exec.DynInstrs),
              std::to_string(R.Static.Checks),
              std::to_string(R.Exec.DynChecks),
              formatString("%.0f", StRatio), formatString("%.0f", DyRatio)});
    uint64_t Rat = static_cast<uint64_t>(DyRatio);
    MinRatio = std::min(MinRatio, Rat);
    MaxRatio = std::max(MaxRatio, Rat);
  }

  if (Flags.Json) {
    W.endArray();
    endBenchDocument(W);
    std::printf("%s\n", W.str().c_str());
    return 0;
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Dynamic check/instruction ratio ranges from %llu%% to %llu%%; "
              "with a check costing at\n"
              "least two instructions, naive checking overhead is roughly "
              "%llu%%-%llu%% (paper: 44%%-132%%).\n",
              (unsigned long long)MinRatio, (unsigned long long)MaxRatio,
              (unsigned long long)(2 * MinRatio),
              (unsigned long long)(2 * MaxRatio));
  return 0;
}

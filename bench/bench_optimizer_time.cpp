//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timing of the range-check optimization phase (the
/// paper's section 4.2 compile-time comparison): each scheme over the
/// whole suite, plus the implication ablation. Expected ordering: NI
/// cheapest, preheader schemes moderate, PRE-based schemes most
/// expensive, and primed (no-implication) variants slower than their
/// unprimed counterparts because the check universe degenerates to one
/// family per check.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "suite/Suite.h"

#include <benchmark/benchmark.h>

using namespace nascent;

namespace {

/// Compiles the whole suite without optimization, once per timing
/// iteration (outside the measured region), then times optimizeModule.
void benchScheme(benchmark::State &State, PlacementScheme Scheme,
                 ImplicationMode Mode, CheckSource Source) {
  PipelineOptions Naive;
  Naive.Optimize = false;
  Naive.Source = Source;

  uint64_t ChecksDeleted = 0;
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<std::unique_ptr<Module>> Modules;
    for (const SuiteProgram &P : benchmarkSuite()) {
      CompileResult R = compileSource(P.Source, Naive);
      if (!R.Success)
        State.SkipWithError("suite program failed to compile");
      Modules.push_back(std::move(R.M));
    }
    State.ResumeTiming();

    RangeCheckOptions Opts;
    Opts.Scheme = Scheme;
    Opts.Implications = Mode;
    for (auto &M : Modules) {
      DiagnosticEngine Diags;
      OptimizerStats S = optimizeModule(*M, Opts, Diags);
      ChecksDeleted += S.ChecksDeleted;
    }
  }
  State.counters["checksDeleted"] = static_cast<double>(ChecksDeleted);
}

void registerAll() {
  struct Entry {
    const char *Name;
    PlacementScheme Scheme;
    ImplicationMode Mode;
  };
  static const Entry Entries[] = {
      {"NI", PlacementScheme::NI, ImplicationMode::All},
      {"CS", PlacementScheme::CS, ImplicationMode::All},
      {"LNI", PlacementScheme::LNI, ImplicationMode::All},
      {"SE", PlacementScheme::SE, ImplicationMode::All},
      {"LI", PlacementScheme::LI, ImplicationMode::All},
      {"LLS", PlacementScheme::LLS, ImplicationMode::All},
      {"ALL", PlacementScheme::ALL, ImplicationMode::All},
      {"NIprime", PlacementScheme::NI, ImplicationMode::None},
      {"SEprime", PlacementScheme::SE, ImplicationMode::None},
      {"LLSprime", PlacementScheme::LLS, ImplicationMode::CrossFamilyOnly},
  };
  for (const Entry &E : Entries) {
    for (CheckSource Source : {CheckSource::PRX, CheckSource::INX}) {
      std::string Name = std::string("BM_Optimize/") + E.Name + "/" +
                         (Source == CheckSource::PRX ? "PRX" : "INX");
      benchmark::RegisterBenchmark(
          Name.c_str(), [E, Source](benchmark::State &State) {
            benchScheme(State, E.Scheme, E.Mode, Source);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

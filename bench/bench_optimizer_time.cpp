//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timing of the range-check optimization phase (the
/// paper's section 4.2 compile-time comparison): each scheme over the
/// whole suite, plus the implication ablation. Expected ordering: NI
/// cheapest, preheader schemes moderate, PRE-based schemes most
/// expensive, and primed (no-implication) variants slower than their
/// unprimed counterparts because the check universe degenerates to one
/// family per check.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "suite/Suite.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

using namespace nascent;

namespace {

/// Whether --tiny was given: run a reduced suite for smoke validation.
bool TinyRun = false;

/// Rewrites the common harness flags onto google-benchmark's own:
/// --json becomes --benchmark_format=json, --tiny caps the measured time
/// (and trims the suite via TinyRun). Everything else passes through.
std::vector<char *> translateBenchArgs(int &Argc, char **Argv,
                                       std::vector<std::string> &Storage) {
  Storage.clear();
  Storage.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Storage.push_back("--benchmark_format=json");
    else if (std::strcmp(Argv[I], "--tiny") == 0) {
      TinyRun = true;
      Storage.push_back("--benchmark_min_time=0.01s");
      // A representative subset (cheapest, the paper's best, and one PRE
      // scheme) keeps the smoke run to a few seconds.
      Storage.push_back("--benchmark_filter=BM_Optimize/(NI|SE|LLS)/PRX");
    } else
      Storage.push_back(Argv[I]);
  }
  std::vector<char *> Out;
  for (std::string &S : Storage)
    Out.push_back(S.data());
  Argc = static_cast<int>(Out.size());
  return Out;
}

/// The suite under measurement (trimmed under --tiny).
std::vector<SuiteProgram> measuredSuite() {
  const std::vector<SuiteProgram> &Full = benchmarkSuite();
  if (!TinyRun)
    return Full;
  return std::vector<SuiteProgram>(Full.begin(),
                                   Full.begin() + std::min<size_t>(3, Full.size()));
}

/// Compiles the whole suite without optimization, once per timing
/// iteration (outside the measured region), then times optimizeModule.
void benchScheme(benchmark::State &State, PlacementScheme Scheme,
                 ImplicationMode Mode, CheckSource Source) {
  PipelineOptions Naive;
  Naive.Optimize = false;
  Naive.Source = Source;

  uint64_t ChecksDeleted = 0;
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<std::unique_ptr<Module>> Modules;
    for (const SuiteProgram &P : measuredSuite()) {
      CompileResult R = compileSource(P.Source, Naive);
      if (!R.Success)
        State.SkipWithError("suite program failed to compile");
      Modules.push_back(std::move(R.M));
    }
    State.ResumeTiming();

    RangeCheckOptions Opts;
    Opts.Scheme = Scheme;
    Opts.Implications = Mode;
    for (auto &M : Modules) {
      DiagnosticEngine Diags;
      OptimizerStats S = optimizeModule(*M, Opts, Diags);
      ChecksDeleted += S.ChecksDeleted;
    }
  }
  State.counters["checksDeleted"] = static_cast<double>(ChecksDeleted);
}

void registerAll() {
  struct Entry {
    const char *Name;
    PlacementScheme Scheme;
    ImplicationMode Mode;
  };
  static const Entry Entries[] = {
      {"NI", PlacementScheme::NI, ImplicationMode::All},
      {"CS", PlacementScheme::CS, ImplicationMode::All},
      {"LNI", PlacementScheme::LNI, ImplicationMode::All},
      {"SE", PlacementScheme::SE, ImplicationMode::All},
      {"LI", PlacementScheme::LI, ImplicationMode::All},
      {"LLS", PlacementScheme::LLS, ImplicationMode::All},
      {"ALL", PlacementScheme::ALL, ImplicationMode::All},
      {"NIprime", PlacementScheme::NI, ImplicationMode::None},
      {"SEprime", PlacementScheme::SE, ImplicationMode::None},
      {"LLSprime", PlacementScheme::LLS, ImplicationMode::CrossFamilyOnly},
  };
  for (const Entry &E : Entries) {
    for (CheckSource Source : {CheckSource::PRX, CheckSource::INX}) {
      std::string Name = std::string("BM_Optimize/") + E.Name + "/" +
                         (Source == CheckSource::PRX ? "PRX" : "INX");
      benchmark::RegisterBenchmark(
          Name.c_str(), [E, Source](benchmark::State &State) {
            benchScheme(State, E.Scheme, E.Mode, Source);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Storage;
  std::vector<char *> Args = translateBenchArgs(argc, argv, Storage);
  registerAll();
  benchmark::Initialize(&argc, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timing of the range-check optimization phase (the
/// paper's section 4.2 compile-time comparison): each scheme over the
/// whole suite, plus the implication ablation. Expected ordering: NI
/// cheapest, preheader schemes moderate, PRE-based schemes most
/// expensive, and primed (no-implication) variants slower than their
/// unprimed counterparts because the check universe degenerates to one
/// family per check.
///
/// `--json` wraps google-benchmark's own JSON document in the versioned
/// bench envelope (schemaVersion + env + config) so `json_check` can
/// validate it and `benchdiff` can gate the per-iteration CPU medians.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

using namespace nascent;

namespace {

/// Whether --tiny was given: run a reduced suite for smoke validation.
bool TinyRun = false;

/// Rewrites the common harness flags onto google-benchmark's own: --tiny
/// caps the measured time (and trims the suite via TinyRun), --reps N
/// becomes --benchmark_repetitions=N (aggregates only — benchdiff reads
/// the medians), --warmup N becomes a minimum warmup time. --json is
/// handled by main (the run is captured and wrapped in the bench
/// envelope). Everything else passes through.
std::vector<char *> translateBenchArgs(int &Argc, char **Argv,
                                       bench::BenchFlags &Flags,
                                       std::vector<std::string> &Storage) {
  Storage.clear();
  Storage.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Flags.Json = true;
    else if (std::strcmp(Argv[I], "--tiny") == 0) {
      Flags.Tiny = true;
      TinyRun = true;
      Storage.push_back("--benchmark_min_time=0.01");
      // A representative subset (cheapest, the paper's best, and one PRE
      // scheme) keeps the smoke run to a few seconds.
      Storage.push_back("--benchmark_filter=BM_Optimize/(NI|SE|LLS)/PRX");
    } else if (std::strcmp(Argv[I], "--reps") == 0 && I + 1 < Argc) {
      Flags.Reps = static_cast<unsigned>(std::atol(Argv[++I]));
      Storage.push_back("--benchmark_repetitions=" +
                        std::to_string(Flags.Reps));
      Storage.push_back("--benchmark_report_aggregates_only=true");
    } else if (std::strcmp(Argv[I], "--warmup") == 0 && I + 1 < Argc) {
      Flags.Warmup = static_cast<unsigned>(std::atol(Argv[++I]));
      Storage.push_back("--benchmark_min_warmup_time=" +
                        std::to_string(0.01 * Flags.Warmup));
    } else
      Storage.push_back(Argv[I]);
  }
  if (Flags.Json && !Flags.Reps)
    Flags.Reps = 1;
  std::vector<char *> Out;
  for (std::string &S : Storage)
    Out.push_back(S.data());
  Argc = static_cast<int>(Out.size());
  return Out;
}

/// The suite under measurement (trimmed under --tiny).
std::vector<SuiteProgram> measuredSuite() {
  const std::vector<SuiteProgram> &Full = benchmarkSuite();
  if (!TinyRun)
    return Full;
  return std::vector<SuiteProgram>(Full.begin(),
                                   Full.begin() + std::min<size_t>(3, Full.size()));
}

/// Compiles the whole suite without optimization, once per timing
/// iteration (outside the measured region), then times optimizeModule.
void benchScheme(benchmark::State &State, PlacementScheme Scheme,
                 ImplicationMode Mode, CheckSource Source) {
  PipelineOptions Naive;
  Naive.Optimize = false;
  Naive.Source = Source;

  uint64_t ChecksDeleted = 0;
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<std::unique_ptr<Module>> Modules;
    for (const SuiteProgram &P : measuredSuite()) {
      CompileResult R = compileSource(P.Source, Naive);
      if (!R.Success)
        State.SkipWithError("suite program failed to compile");
      Modules.push_back(std::move(R.M));
    }
    State.ResumeTiming();

    RangeCheckOptions Opts;
    Opts.Scheme = Scheme;
    Opts.Implications = Mode;
    for (auto &M : Modules) {
      DiagnosticEngine Diags;
      OptimizerStats S = optimizeModule(*M, Opts, Diags);
      ChecksDeleted += S.ChecksDeleted;
    }
  }
  // Per-iteration, so the value is deterministic (independent of how many
  // iterations the timer needed) and benchdiff could diff it meaningfully.
  State.counters["checksDeleted"] = benchmark::Counter(
      static_cast<double>(ChecksDeleted), benchmark::Counter::kAvgIterations);
}

void registerAll() {
  struct Entry {
    const char *Name;
    PlacementScheme Scheme;
    ImplicationMode Mode;
  };
  static const Entry Entries[] = {
      {"NI", PlacementScheme::NI, ImplicationMode::All},
      {"CS", PlacementScheme::CS, ImplicationMode::All},
      {"LNI", PlacementScheme::LNI, ImplicationMode::All},
      {"SE", PlacementScheme::SE, ImplicationMode::All},
      {"LI", PlacementScheme::LI, ImplicationMode::All},
      {"LLS", PlacementScheme::LLS, ImplicationMode::All},
      {"ALL", PlacementScheme::ALL, ImplicationMode::All},
      {"NIprime", PlacementScheme::NI, ImplicationMode::None},
      {"SEprime", PlacementScheme::SE, ImplicationMode::None},
      {"LLSprime", PlacementScheme::LLS, ImplicationMode::CrossFamilyOnly},
  };
  for (const Entry &E : Entries) {
    for (CheckSource Source : {CheckSource::PRX, CheckSource::INX}) {
      std::string Name = std::string("BM_Optimize/") + E.Name + "/" +
                         (Source == CheckSource::PRX ? "PRX" : "INX");
      benchmark::RegisterBenchmark(
          Name.c_str(), [E, Source](benchmark::State &State) {
            benchScheme(State, E.Scheme, E.Mode, Source);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  bench::BenchFlags Flags;
  std::vector<std::string> Storage;
  std::vector<char *> Args = translateBenchArgs(argc, argv, Flags, Storage);
  registerAll();
  benchmark::Initialize(&argc, Args.data());
  if (!Flags.Json) {
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  // Capture google-benchmark's JSON and wrap it in the bench envelope.
  std::ostringstream Captured;
  benchmark::JSONReporter Reporter;
  Reporter.SetOutputStream(&Captured);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  obs::JsonWriter W;
  bench::beginBenchDocument(W, "bench_optimizer_time", Flags);
  W.key("googleBenchmark");
  W.rawValue(Captured.str());
  bench::endBenchDocument(W);
  std::printf("%s\n", W.str().c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the substrates: bit-vector algebra, the data-flow
/// solver on a synthetic diamond-chain CFG, check interning / implication
/// closure, the front end, and interpreter throughput. These are the
/// ablation handles for the design choices called out in DESIGN.md (dense
/// bit vectors, families-as-nodes CIG, payload-based checks).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Dataflow.h"
#include "checks/CheckImplicationGraph.h"
#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "suite/Suite.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

using namespace nascent;

namespace {

void BM_BitVectorOps(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  DenseBitVector A(N), B(N);
  for (size_t I = 0; I < N; I += 3)
    A.set(I);
  for (size_t I = 0; I < N; I += 7)
    B.set(I);
  for (auto _ : State) {
    DenseBitVector C = A;
    C &= B;
    C |= A;
    C.andNot(B);
    benchmark::DoNotOptimize(C.count());
  }
}
BENCHMARK(BM_BitVectorOps)->Arg(256)->Arg(4096)->Arg(65536);

/// Builds a chain of D diamonds, each block defining one symbol and
/// (implicitly, through Gen) generating one fact.
Function *buildDiamondChain(Module &M, unsigned Diamonds) {
  Function *F = M.createFunction("chain" + std::to_string(Diamonds));
  IRBuilder B(*F);
  SymbolID Cond = F->symbols().createScalar("c", ScalarType::Bool);
  BasicBlock *Cur = B.createBlock("entry");
  B.setInsertBlock(Cur);
  for (unsigned K = 0; K != Diamonds; ++K) {
    BasicBlock *T = B.createBlock("t");
    BasicBlock *E = B.createBlock("e");
    BasicBlock *J = B.createBlock("j");
    B.emitBr(Value::sym(Cond), T->id(), E->id());
    B.setInsertBlock(T);
    B.emitJump(J->id());
    B.setInsertBlock(E);
    B.emitJump(J->id());
    B.setInsertBlock(J);
    Cur = J;
  }
  B.emitRet();
  F->recomputePreds();
  return F;
}

void BM_DataflowSolver(benchmark::State &State) {
  Module M;
  unsigned Diamonds = static_cast<unsigned>(State.range(0));
  Function *F = buildDiamondChain(M, Diamonds);
  size_t NumBlocks = F->numBlocks();
  size_t Universe = 512;
  DataflowProblem P;
  P.Dir = DataflowProblem::Direction::Forward;
  P.MeetOp = DataflowProblem::Meet::Intersect;
  P.UniverseSize = Universe;
  P.Gen.assign(NumBlocks, DenseBitVector(Universe));
  P.Kill.assign(NumBlocks, DenseBitVector(Universe));
  for (size_t B = 0; B != NumBlocks; ++B) {
    P.Gen[B].set(B % Universe);
    P.Kill[B].set((B * 7 + 1) % Universe);
  }
  for (auto _ : State) {
    DataflowResult R = solveDataflow(*F, P);
    benchmark::DoNotOptimize(R.Out.back().count());
  }
}
BENCHMARK(BM_DataflowSolver)->Arg(16)->Arg(128)->Arg(512);

void BM_CheckInterning(benchmark::State &State) {
  for (auto _ : State) {
    CheckUniverse U;
    for (SymbolID S = 0; S != 64; ++S)
      for (int64_t Bound = 0; Bound != 16; ++Bound) {
        LinearExpr E = LinearExpr::term(S, 2) + LinearExpr::term(S + 64, -1);
        U.intern(CheckExpr(E, Bound));
      }
    benchmark::DoNotOptimize(U.size());
  }
}
BENCHMARK(BM_CheckInterning);

void BM_ImplicationClosure(benchmark::State &State) {
  CheckUniverse U;
  std::vector<CheckID> Ids;
  for (SymbolID S = 0; S != 32; ++S)
    for (int64_t Bound = 0; Bound != 8; ++Bound)
      Ids.push_back(U.intern(CheckExpr(LinearExpr::term(S), Bound)));
  CheckImplicationGraph CIG(U);
  // A ring of implications between consecutive families.
  for (FamilyID F = 0; F + 1 < U.numFamilies(); ++F)
    CIG.addFamilyEdge(F, F + 1, 1);
  for (auto _ : State) {
    size_t Total = 0;
    for (CheckID C : Ids) {
      DenseBitVector Bits(U.size());
      CIG.weakerClosure(C, Bits);
      Total += Bits.count();
    }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_ImplicationClosure);

void BM_FrontEnd(benchmark::State &State) {
  const SuiteProgram *P = findSuiteProgram("arc2d");
  PipelineOptions PO;
  PO.Optimize = false;
  for (auto _ : State) {
    CompileResult R = compileSource(P->Source, PO);
    benchmark::DoNotOptimize(R.Success);
  }
}
BENCHMARK(BM_FrontEnd)->Unit(benchmark::kMillisecond);

void BM_InterpreterThroughput(benchmark::State &State) {
  const SuiteProgram *P = findSuiteProgram("vortex");
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::LLS;
  CompileResult R = compileSource(P->Source, PO);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    ExecResult E = interpret(*R.M);
    Instrs += E.DynInstrs + E.DynChecks;
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

} // namespace

// Same common flags as the table harnesses, rewritten onto
// google-benchmark's own: --tiny caps the measured time per benchmark for
// the bench-smoke CTest runs, --reps/--warmup become repetitions/warmup
// time, and --json captures google-benchmark's JSON document and wraps it
// in the versioned bench envelope (schemaVersion + env + config).
int main(int argc, char **argv) {
  bench::BenchFlags Flags;
  std::vector<std::string> Storage;
  Storage.push_back(argv[0]);
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Flags.Json = true;
    else if (std::strcmp(argv[I], "--tiny") == 0) {
      Flags.Tiny = true;
      Storage.push_back("--benchmark_min_time=0.01");
    } else if (std::strcmp(argv[I], "--reps") == 0 && I + 1 < argc) {
      Flags.Reps = static_cast<unsigned>(std::atol(argv[++I]));
      Storage.push_back("--benchmark_repetitions=" +
                        std::to_string(Flags.Reps));
      Storage.push_back("--benchmark_report_aggregates_only=true");
    } else if (std::strcmp(argv[I], "--warmup") == 0 && I + 1 < argc) {
      Flags.Warmup = static_cast<unsigned>(std::atol(argv[++I]));
      Storage.push_back("--benchmark_min_warmup_time=" +
                        std::to_string(0.01 * Flags.Warmup));
    } else
      Storage.push_back(argv[I]);
  }
  std::vector<char *> Args;
  for (std::string &S : Storage)
    Args.push_back(S.data());
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (!Flags.Json) {
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  std::ostringstream Captured;
  benchmark::JSONReporter Reporter;
  Reporter.SetOutputStream(&Captured);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  obs::JsonWriter W;
  bench::beginBenchDocument(W, "bench_micro", Flags);
  W.key("googleBenchmark");
  W.rawValue(Captured.str());
  bench::endBenchDocument(W);
  std::printf("%s\n", W.str().c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 3 of the paper: the check-implication ablation. NI'
/// and SE' run with no implications between checks at all (every check
/// its own family); LLS' runs without within-family implications but
/// keeps the preheader-to-body facts. The paper found the implication
/// property contributes little (< 3 % almost everywhere) and that the
/// primed variants are *slower*, because the implication-free universe
/// has one family per check.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace nascent;
using namespace nascent::bench;

int main(int argc, char **argv) {
  BenchFlags Flags;
  if (!parseBenchFlags(argc, argv, Flags))
    return 2;
  std::vector<SuiteProgram> Suite = benchSuite(Flags);

  struct Config {
    const char *Label;
    PlacementScheme Scheme;
    ImplicationMode Mode;
  };
  const Config Configs[] = {
      {"NI", PlacementScheme::NI, ImplicationMode::All},
      {"NI'", PlacementScheme::NI, ImplicationMode::None},
      {"SE", PlacementScheme::SE, ImplicationMode::All},
      {"SE'", PlacementScheme::SE, ImplicationMode::None},
      {"LLS", PlacementScheme::LLS, ImplicationMode::All},
      {"LLS'", PlacementScheme::LLS, ImplicationMode::CrossFamilyOnly},
  };

  obs::JsonWriter W;
  if (Flags.Json) {
    beginBenchDocument(W, "table3_implication", Flags);
    W.key("runs");
    W.beginArray();
  } else {
    std::printf("Table 3: checks eliminated with and without implications "
                "between checks\n\n");
  }

  // Measure the whole matrix up front (fanned across --jobs workers),
  // then emit rows from the ordered results.
  const CheckSource Sources[] = {CheckSource::PRX, CheckSource::INX};
  std::vector<SweepConfig> Sweep;
  for (CheckSource Source : Sources)
    for (const Config &C : Configs)
      for (const SuiteProgram &P : Suite)
        Sweep.push_back({P, Source, C.Scheme, C.Mode});
  std::vector<MeasuredRun> Measured = sweepMeasure(Sweep, Flags);

  size_t Next = 0;
  for (CheckSource Source : Sources) {
    std::vector<std::string> Header = {"scheme"};
    for (const SuiteProgram &P : Suite)
      Header.push_back(P.Name);
    Header.push_back("Range(s)");
    Header.push_back("Total(s)");
    TextTable T(std::move(Header));

    for (const Config &C : Configs) {
      std::vector<std::string> Row = {C.Label};
      double RangeSecs = 0, TotalSecs = 0;
      for (const SuiteProgram &P : Suite) {
        const RunResult &Naive = naiveBaseline(P, Source);
        const MeasuredRun &Opt = Measured[Next++];
        if (Flags.Json) {
          W.beginObject();
          W.kv("source", checkSourceName(Source));
          W.kv("config", C.Label);
          W.key("run");
          writeRunJson(W, P.Name, Naive, Opt);
          W.endObject();
        }
        Row.push_back(
            formatString("%.2f", percentEliminated(Naive, Opt.Run)));
        RangeSecs += Opt.Run.OptimizeWallSeconds;
        TotalSecs += Opt.Run.TotalWallSeconds;
      }
      Row.push_back(formatString("%.3f", RangeSecs));
      Row.push_back(formatString("%.3f", TotalSecs));
      T.addRow(std::move(Row));
    }
    if (!Flags.Json) {
      std::printf("%s-Checks:\n", checkSourceName(Source));
      std::printf("%s\n", T.render().c_str());
    }
  }

  if (Flags.Json) {
    W.endArray();
    endBenchDocument(W);
    std::printf("%s\n", W.str().c_str());
    return 0;
  }

  std::printf("Shape expectations from the paper: the primed variants "
              "eliminate only a few percent\nfewer checks, and cost more "
              "compile time than their unprimed counterparts.\n");
  return 0;
}

#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace nascent;
using namespace nascent::bench;

const char *nascent::bench::checkSourceName(CheckSource S) {
  return S == CheckSource::PRX ? "PRX" : "INX";
}

RunResult nascent::bench::runProgram(const SuiteProgram &Program,
                                     CheckSource Source, bool Optimize,
                                     PlacementScheme Scheme,
                                     ImplicationMode Mode) {
  PipelineOptions PO;
  PO.Source = Source;
  PO.Optimize = Optimize;
  PO.Opt.Scheme = Scheme;
  PO.Opt.Implications = Mode;
  CompileResult CR = compileSource(Program.Source, PO);
  if (!CR.Success) {
    std::fprintf(stderr, "benchmark program '%s' failed to compile:\n%s\n",
                 Program.Name, CR.Diags.render().c_str());
    std::exit(1);
  }
  RunResult R;
  R.Exec = interpret(*CR.M);
  if (R.Exec.St != ExecResult::Status::Ok) {
    std::fprintf(stderr, "benchmark program '%s' did not run cleanly: %s\n",
                 Program.Name, R.Exec.FaultMessage.c_str());
    std::exit(1);
  }
  R.Static = countStatic(*CR.M);
  R.Opt = CR.Stats;
  R.OptimizeSeconds = CR.OptimizeSeconds;
  R.TotalSeconds = CR.TotalSeconds;
  return R;
}

const RunResult &nascent::bench::naiveBaseline(const SuiteProgram &Program,
                                               CheckSource Source) {
  static std::map<std::pair<std::string, int>, RunResult> Cache;
  auto Key = std::make_pair(std::string(Program.Name),
                            static_cast<int>(Source));
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  RunResult R = runProgram(Program, Source, /*Optimize=*/false,
                           PlacementScheme::NI, ImplicationMode::All);
  return Cache.emplace(Key, std::move(R)).first->second;
}

double nascent::bench::percentEliminated(const RunResult &Naive,
                                         const RunResult &Optimized) {
  if (Naive.Exec.DynChecks == 0)
    return 0.0;
  return 100.0 *
         static_cast<double>(Naive.Exec.DynChecks -
                             Optimized.Exec.DynChecks) /
         static_cast<double>(Naive.Exec.DynChecks);
}

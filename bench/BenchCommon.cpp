#include "BenchCommon.h"

#include "driver/BatchCompiler.h"
#include "obs/BenchSchema.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <mutex>

using namespace nascent;
using namespace nascent::bench;

const char *nascent::bench::checkSourceName(CheckSource S) {
  return S == CheckSource::PRX ? "PRX" : "INX";
}

RunResult nascent::bench::runProgram(const SuiteProgram &Program,
                                     CheckSource Source, bool Optimize,
                                     PlacementScheme Scheme,
                                     ImplicationMode Mode) {
  PipelineOptions PO;
  PO.Source = Source;
  PO.Optimize = Optimize;
  PO.Opt.Scheme = Scheme;
  PO.Opt.Implications = Mode;
  CompileResult CR = compileSource(Program.Source, PO);
  if (!CR.Success) {
    std::fprintf(stderr, "benchmark program '%s' failed to compile:\n%s\n",
                 Program.Name, CR.Diags.render().c_str());
    std::exit(1);
  }
  RunResult R;
  R.Exec = interpret(*CR.M);
  if (R.Exec.St != ExecResult::Status::Ok) {
    std::fprintf(stderr, "benchmark program '%s' did not run cleanly: %s\n",
                 Program.Name, R.Exec.FaultMessage.c_str());
    std::exit(1);
  }
  R.Static = countStatic(*CR.M);
  R.Opt = CR.Stats;
  R.OptimizeWallSeconds = CR.optimizeWallSeconds();
  R.OptimizeCpuSeconds = CR.optimizeCpuSeconds();
  R.TotalWallSeconds = CR.totalWallSeconds();
  R.TotalCpuSeconds = CR.totalCpuSeconds();
  return R;
}

MeasuredRun nascent::bench::measureProgram(const SuiteProgram &Program,
                                           CheckSource Source, bool Optimize,
                                           PlacementScheme Scheme,
                                           ImplicationMode Mode,
                                           const BenchFlags &Flags) {
  for (unsigned W = 0; W != Flags.Warmup; ++W)
    runProgram(Program, Source, Optimize, Scheme, Mode);

  MeasuredRun M;
  unsigned Reps = std::max(1u, Flags.Reps);
  std::vector<double> OptWall, OptCpu, TotWall, TotCpu;
  OptWall.reserve(Reps);
  OptCpu.reserve(Reps);
  TotWall.reserve(Reps);
  TotCpu.reserve(Reps);
  for (unsigned R = 0; R != Reps; ++R) {
    // Bracket each rep in registry snapshots: the work map must hold one
    // rep's worth of counters, not the accumulation across --reps.
    obs::StatSnapshot Before = obs::StatRegistry::global().snapshot();
    M.Run = runProgram(Program, Source, Optimize, Scheme, Mode);
    M.Work = obs::StatRegistry::global().snapshot().deltaFrom(Before);
    OptWall.push_back(M.Run.OptimizeWallSeconds);
    OptCpu.push_back(M.Run.OptimizeCpuSeconds);
    TotWall.push_back(M.Run.TotalWallSeconds);
    TotCpu.push_back(M.Run.TotalCpuSeconds);
  }
  M.OptimizeWall = obs::summarizeSamples(OptWall);
  M.OptimizeCpu = obs::summarizeSamples(OptCpu);
  M.TotalWall = obs::summarizeSamples(TotWall);
  M.TotalCpu = obs::summarizeSamples(TotCpu);
  return M;
}

bool nascent::bench::parseBenchFlags(int Argc, char **Argv, BenchFlags &Out) {
  auto Usage = [Argv] {
    std::fprintf(
        stderr,
        "usage: %s [--json] [--tiny] [--reps N] [--warmup N] [--jobs N]\n",
        Argv[0]);
    return false;
  };
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Out.Json = true;
    else if (std::strcmp(Argv[I], "--tiny") == 0)
      Out.Tiny = true;
    else if (std::strcmp(Argv[I], "--reps") == 0 && I + 1 < Argc) {
      long N = std::atol(Argv[++I]);
      if (N < 1)
        return Usage();
      Out.Reps = static_cast<unsigned>(N);
    } else if (std::strcmp(Argv[I], "--warmup") == 0 && I + 1 < Argc) {
      long N = std::atol(Argv[++I]);
      if (N < 0)
        return Usage();
      Out.Warmup = static_cast<unsigned>(N);
    } else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      long N = std::atol(Argv[++I]);
      if (N < 0)
        return Usage();
      Out.Jobs = resolveJobCount(static_cast<unsigned>(N));
    } else
      return Usage();
  }
  return true;
}

std::vector<SuiteProgram> nascent::bench::benchSuite(const BenchFlags &Flags) {
  const std::vector<SuiteProgram> &Full = benchmarkSuite();
  if (!Flags.Tiny)
    return Full;
  size_t N = std::min<size_t>(3, Full.size());
  return std::vector<SuiteProgram>(Full.begin(), Full.begin() + N);
}

void nascent::bench::beginBenchDocument(obs::JsonWriter &W,
                                        const char *Harness,
                                        const BenchFlags &Flags) {
  W.beginObject();
  W.kv("schemaVersion", obs::BenchSchemaVersion);
  W.kv("harness", Harness);
  W.key("env");
  obs::writeBenchEnv(W, obs::captureBenchEnv());
  W.key("config");
  W.beginObject();
  W.kv("reps", static_cast<uint64_t>(std::max(1u, Flags.Reps)));
  W.kv("warmup", static_cast<uint64_t>(Flags.Warmup));
  W.kv("tiny", Flags.Tiny);
  W.endObject();
}

void nascent::bench::endBenchDocument(obs::JsonWriter &W) { W.endObject(); }

void nascent::bench::writeRunJson(obs::JsonWriter &W, const char *Program,
                                  const RunResult &Naive,
                                  const MeasuredRun &Measured) {
  const RunResult &Run = Measured.Run;
  W.beginObject();
  W.kv("program", Program);
  W.kv("dynChecks", Run.Exec.DynChecks);
  W.kv("dynInstrs", Run.Exec.DynInstrs);
  W.kv("staticChecks", Run.Static.Checks);
  W.kv("pctEliminated", percentEliminated(Naive, Run));
  W.key("stats");
  Run.Opt.writeJson(W);
  W.key("timing");
  W.beginObject();
  W.key("optimizeWall");
  Measured.OptimizeWall.writeJson(W);
  W.key("optimizeCpu");
  Measured.OptimizeCpu.writeJson(W);
  W.key("totalWall");
  Measured.TotalWall.writeJson(W);
  W.key("totalCpu");
  Measured.TotalCpu.writeJson(W);
  W.endObject();
  W.key("work");
  W.beginObject();
  for (const auto &[Name, V] : Measured.Work)
    W.kv(Name, V);
  W.endObject();
  W.endObject();
}

std::vector<MeasuredRun>
nascent::bench::sweepMeasure(const std::vector<SweepConfig> &Configs,
                             const BenchFlags &Flags) {
  std::vector<MeasuredRun> Out(Configs.size());
  if (Flags.Jobs <= 1) {
    for (size_t I = 0; I != Configs.size(); ++I) {
      const SweepConfig &C = Configs[I];
      Out[I] = measureProgram(C.Program, C.Source, /*Optimize=*/true,
                              C.Scheme, C.Mode, Flags);
    }
    return Out;
  }
  std::vector<std::future<void>> Futures;
  Futures.reserve(Configs.size());
  {
    ThreadPool Pool(Flags.Jobs);
    for (size_t I = 0; I != Configs.size(); ++I)
      Futures.push_back(Pool.submit([&Out, &Configs, &Flags, I] {
        const SweepConfig &C = Configs[I];
        Out[I] = measureProgram(C.Program, C.Source, /*Optimize=*/true,
                                C.Scheme, C.Mode, Flags);
      }));
    // Pool destruction drains the queue and joins every worker, flushing
    // their stat shards, before any result is consumed.
  }
  for (std::future<void> &F : Futures)
    F.get();
  return Out;
}

const RunResult &nascent::bench::naiveBaseline(const SuiteProgram &Program,
                                               CheckSource Source) {
  // Guarded so sweep workers can warm the cache concurrently; map nodes
  // are stable, so returned references outlive the lock.
  static std::mutex Mu;
  static std::map<std::pair<std::string, int>, RunResult> Cache;
  auto Key = std::make_pair(std::string(Program.Name),
                            static_cast<int>(Source));
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  RunResult R = runProgram(Program, Source, /*Optimize=*/false,
                           PlacementScheme::NI, ImplicationMode::All);
  return Cache.emplace(Key, std::move(R)).first->second;
}

double nascent::bench::percentEliminated(const RunResult &Naive,
                                         const RunResult &Optimized) {
  if (Naive.Exec.DynChecks == 0)
    return 0.0;
  return 100.0 *
         static_cast<double>(Naive.Exec.DynChecks -
                             Optimized.Exec.DynChecks) /
         static_cast<double>(Naive.Exec.DynChecks);
}

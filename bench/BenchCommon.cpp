#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

using namespace nascent;
using namespace nascent::bench;

const char *nascent::bench::checkSourceName(CheckSource S) {
  return S == CheckSource::PRX ? "PRX" : "INX";
}

RunResult nascent::bench::runProgram(const SuiteProgram &Program,
                                     CheckSource Source, bool Optimize,
                                     PlacementScheme Scheme,
                                     ImplicationMode Mode) {
  PipelineOptions PO;
  PO.Source = Source;
  PO.Optimize = Optimize;
  PO.Opt.Scheme = Scheme;
  PO.Opt.Implications = Mode;
  CompileResult CR = compileSource(Program.Source, PO);
  if (!CR.Success) {
    std::fprintf(stderr, "benchmark program '%s' failed to compile:\n%s\n",
                 Program.Name, CR.Diags.render().c_str());
    std::exit(1);
  }
  RunResult R;
  R.Exec = interpret(*CR.M);
  if (R.Exec.St != ExecResult::Status::Ok) {
    std::fprintf(stderr, "benchmark program '%s' did not run cleanly: %s\n",
                 Program.Name, R.Exec.FaultMessage.c_str());
    std::exit(1);
  }
  R.Static = countStatic(*CR.M);
  R.Opt = CR.Stats;
  R.OptimizeWallSeconds = CR.optimizeWallSeconds();
  R.OptimizeCpuSeconds = CR.optimizeCpuSeconds();
  R.TotalWallSeconds = CR.totalWallSeconds();
  R.TotalCpuSeconds = CR.totalCpuSeconds();
  return R;
}

bool nascent::bench::parseBenchFlags(int Argc, char **Argv, BenchFlags &Out) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Out.Json = true;
    else if (std::strcmp(Argv[I], "--tiny") == 0)
      Out.Tiny = true;
    else {
      std::fprintf(stderr, "usage: %s [--json] [--tiny]\n", Argv[0]);
      return false;
    }
  }
  return true;
}

std::vector<SuiteProgram> nascent::bench::benchSuite(const BenchFlags &Flags) {
  const std::vector<SuiteProgram> &Full = benchmarkSuite();
  if (!Flags.Tiny)
    return Full;
  size_t N = std::min<size_t>(3, Full.size());
  return std::vector<SuiteProgram>(Full.begin(), Full.begin() + N);
}

void nascent::bench::writeRunJson(obs::JsonWriter &W, const char *Program,
                                  const RunResult &Naive,
                                  const RunResult &Run) {
  W.beginObject();
  W.kv("program", Program);
  W.kv("dynChecks", Run.Exec.DynChecks);
  W.kv("dynInstrs", Run.Exec.DynInstrs);
  W.kv("staticChecks", Run.Static.Checks);
  W.kv("pctEliminated", percentEliminated(Naive, Run));
  W.key("stats");
  Run.Opt.writeJson(W);
  W.key("timing");
  W.beginObject();
  W.kv("optimizeWallSeconds", Run.OptimizeWallSeconds);
  W.kv("optimizeCpuSeconds", Run.OptimizeCpuSeconds);
  W.kv("totalWallSeconds", Run.TotalWallSeconds);
  W.kv("totalCpuSeconds", Run.TotalCpuSeconds);
  W.endObject();
  W.endObject();
}

const RunResult &nascent::bench::naiveBaseline(const SuiteProgram &Program,
                                               CheckSource Source) {
  static std::map<std::pair<std::string, int>, RunResult> Cache;
  auto Key = std::make_pair(std::string(Program.Name),
                            static_cast<int>(Source));
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  RunResult R = runProgram(Program, Source, /*Optimize=*/false,
                           PlacementScheme::NI, ImplicationMode::All);
  return Cache.emplace(Key, std::move(R)).first->second;
}

double nascent::bench::percentEliminated(const RunResult &Naive,
                                         const RunResult &Optimized) {
  if (Naive.Exec.DynChecks == 0)
    return 0.0;
  return 100.0 *
         static_cast<double>(Naive.Exec.DynChecks -
                             Optimized.Exec.DynChecks) /
         static_cast<double>(Naive.Exec.DynChecks);
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the table harnesses: compile + run a suite program
/// under a configuration — repeated `--reps` times with warmup, timing
/// summarised by median/MAD/bootstrap-CI on both clocks, and every rep's
/// StatRegistry delta captured as deterministic work-proxy counters — with
/// caching of the naive baseline runs, and the versioned JSON envelope
/// (schemaVersion + environment + config) every harness document opens
/// with. `examples/benchdiff` consumes these documents; docs/benchmarking.md
/// describes the schema.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_BENCH_BENCHCOMMON_H
#define NASCENT_BENCH_BENCHCOMMON_H

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "obs/Json.h"
#include "obs/Sampling.h"
#include "obs/StatRegistry.h"
#include "suite/Suite.h"

#include <string>

namespace nascent {
namespace bench {

/// One measured configuration run. Both the optimize phase and the whole
/// pipeline are timed on both clocks (the old single-clock fields mixed
/// CPU and wall time).
struct RunResult {
  ExecResult Exec;
  StaticCounts Static;
  OptimizerStats Opt;
  double OptimizeWallSeconds = 0;
  double OptimizeCpuSeconds = 0;
  double TotalWallSeconds = 0;
  double TotalCpuSeconds = 0;
};

/// A configuration run repeated `--reps` times (after `--warmup` unmeasured
/// runs): the last rep's counts, the timing sample summaries, and the
/// per-rep StatRegistry delta. The counts and the work map are
/// deterministic — identical for every rep (tests/obs/DeterminismTest
/// holds the compiler to that) — so keeping the last rep loses nothing;
/// only the clocks need statistics.
struct MeasuredRun {
  RunResult Run;
  obs::SampleStats OptimizeWall;
  obs::SampleStats OptimizeCpu;
  obs::SampleStats TotalWall;
  obs::SampleStats TotalCpu;
  /// Work-proxy counters: the global StatRegistry delta over one rep
  /// (compile + interpret), e.g. bit-vector word ops, dataflow iterations
  /// to fixpoint, CIG edges. Immune to machine noise.
  obs::StatSnapshot::FlatMap Work;
};

/// Common harness flags: `--json` switches the harness from the printed
/// table to one machine-readable JSON document on stdout; `--tiny` caps
/// interpreter work for smoke runs (bench-smoke CTest label); `--reps N`
/// measures each configuration N times (after `--warmup M` discarded
/// runs) so the JSON carries confidence intervals worth gating on;
/// `--jobs N` fans the configuration sweep across N worker threads
/// (0 = one per hardware thread). Work-proxy counters are identical for
/// every job count; only the clocks move, which is why the perf gate
/// pins its timing comparisons to serial runs.
struct BenchFlags {
  bool Json = false;
  bool Tiny = false;
  unsigned Reps = 1;
  unsigned Warmup = 0;
  unsigned Jobs = 1;
};

/// Parses argv for the common flags; returns false (after printing a
/// usage message to stderr) on an unknown argument.
bool parseBenchFlags(int Argc, char **Argv, BenchFlags &Out);

/// The suite to iterate under \p Flags: the full ten programs normally,
/// a three-program subset under --tiny.
std::vector<SuiteProgram> benchSuite(const BenchFlags &Flags);

/// Opens the versioned document envelope every harness's --json mode
/// emits: schemaVersion, harness name, environment capture, and the
/// repetition config. Leaves the top-level object open; the harness adds
/// its "runs" array and calls endBenchDocument.
void beginBenchDocument(obs::JsonWriter &W, const char *Harness,
                        const BenchFlags &Flags);
void endBenchDocument(obs::JsonWriter &W);

/// Appends one JSON object for a measured run: the dynamic/static counts,
/// the optimizer stats, the timing sample summaries (both clocks), and
/// the work-proxy counter deltas. Used by every table harness's --json
/// mode.
void writeRunJson(obs::JsonWriter &W, const char *Program,
                  const RunResult &Naive, const MeasuredRun &Run);

/// Compiles and runs \p Program once. When \p Optimize is false the naive
/// baseline is produced. Terminates with a message on compile failure
/// (the suite must always compile).
RunResult runProgram(const SuiteProgram &Program, CheckSource Source,
                     bool Optimize, PlacementScheme Scheme,
                     ImplicationMode Mode);

/// The repetition driver: runs \p Program Flags.Warmup unmeasured times,
/// then Flags.Reps measured times, summarising the clocks and snapshotting
/// the StatRegistry around each rep so the work map holds per-rep (not
/// accumulated) values.
MeasuredRun measureProgram(const SuiteProgram &Program, CheckSource Source,
                           bool Optimize, PlacementScheme Scheme,
                           ImplicationMode Mode, const BenchFlags &Flags);

/// One cell of a configuration sweep, ready to hand to sweepMeasure.
struct SweepConfig {
  SuiteProgram Program;
  CheckSource Source = CheckSource::PRX;
  PlacementScheme Scheme = PlacementScheme::NI;
  ImplicationMode Mode = ImplicationMode::All;
};

/// Runs measureProgram for every config, fanned across Flags.Jobs worker
/// threads (<= 1 runs serially on the calling thread), and returns the
/// results in submission order. Every worker is joined before this
/// returns, so a subsequent StatRegistry read sees all sweep work, and
/// each result's work map is exactly what a serial run would report.
std::vector<MeasuredRun> sweepMeasure(const std::vector<SweepConfig> &Configs,
                                      const BenchFlags &Flags);

/// Naive baseline (checks inserted, no optimization) for \p Source kind.
/// Cached per (program, source); safe to call from sweep workers.
const RunResult &naiveBaseline(const SuiteProgram &Program,
                               CheckSource Source);

/// Percentage of dynamic checks eliminated relative to the naive run.
double percentEliminated(const RunResult &Naive, const RunResult &Optimized);

/// "PRX" / "INX".
const char *checkSourceName(CheckSource S);

} // namespace bench
} // namespace nascent

#endif // NASCENT_BENCH_BENCHCOMMON_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the table harnesses: compile + run a suite program
/// under a configuration, with caching of the naive baseline runs.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_BENCH_BENCHCOMMON_H
#define NASCENT_BENCH_BENCHCOMMON_H

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "suite/Suite.h"

#include <string>

namespace nascent {
namespace bench {

/// One measured configuration run.
struct RunResult {
  ExecResult Exec;
  StaticCounts Static;
  OptimizerStats Opt;
  double OptimizeSeconds = 0;
  double TotalSeconds = 0;
};

/// Compiles and runs \p Program. When \p Optimize is false the naive
/// baseline is produced. Terminates with a message on compile failure
/// (the suite must always compile).
RunResult runProgram(const SuiteProgram &Program, CheckSource Source,
                     bool Optimize, PlacementScheme Scheme,
                     ImplicationMode Mode);

/// Naive baseline (checks inserted, no optimization) for \p Source kind.
const RunResult &naiveBaseline(const SuiteProgram &Program,
                               CheckSource Source);

/// Percentage of dynamic checks eliminated relative to the naive run.
double percentEliminated(const RunResult &Naive, const RunResult &Optimized);

/// "PRX" / "INX".
const char *checkSourceName(CheckSource S);

} // namespace bench
} // namespace nascent

#endif // NASCENT_BENCH_BENCHCOMMON_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the table harnesses: compile + run a suite program
/// under a configuration, with caching of the naive baseline runs.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_BENCH_BENCHCOMMON_H
#define NASCENT_BENCH_BENCHCOMMON_H

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "obs/Json.h"
#include "suite/Suite.h"

#include <string>

namespace nascent {
namespace bench {

/// One measured configuration run. Both the optimize phase and the whole
/// pipeline are timed on both clocks (the old single-clock fields mixed
/// CPU and wall time).
struct RunResult {
  ExecResult Exec;
  StaticCounts Static;
  OptimizerStats Opt;
  double OptimizeWallSeconds = 0;
  double OptimizeCpuSeconds = 0;
  double TotalWallSeconds = 0;
  double TotalCpuSeconds = 0;
};

/// Common harness flags: `--json` switches the harness from the printed
/// table to one machine-readable JSON document on stdout; `--tiny` caps
/// interpreter work for smoke runs (bench-smoke CTest label).
struct BenchFlags {
  bool Json = false;
  bool Tiny = false;
};

/// Parses argv for the common flags; returns false (after printing a
/// usage message to stderr) on an unknown argument.
bool parseBenchFlags(int Argc, char **Argv, BenchFlags &Out);

/// The suite to iterate under \p Flags: the full ten programs normally,
/// a three-program subset under --tiny.
std::vector<SuiteProgram> benchSuite(const BenchFlags &Flags);

/// Appends one JSON object for a measured run: the dynamic/static counts,
/// the optimizer stats, and the dual-clock timings. Used by every table
/// harness's --json mode (and by examples/audit_all).
void writeRunJson(obs::JsonWriter &W, const char *Program,
                  const RunResult &Naive, const RunResult &Run);

/// Compiles and runs \p Program. When \p Optimize is false the naive
/// baseline is produced. Terminates with a message on compile failure
/// (the suite must always compile).
RunResult runProgram(const SuiteProgram &Program, CheckSource Source,
                     bool Optimize, PlacementScheme Scheme,
                     ImplicationMode Mode);

/// Naive baseline (checks inserted, no optimization) for \p Source kind.
const RunResult &naiveBaseline(const SuiteProgram &Program,
                               CheckSource Source);

/// Percentage of dynamic checks eliminated relative to the naive run.
double percentEliminated(const RunResult &Naive, const RunResult &Optimized);

/// "PRX" / "INX".
const char *checkSourceName(CheckSource S);

} // namespace bench
} // namespace nascent

#endif // NASCENT_BENCH_BENCHCOMMON_H
